//! Crash-recovery behavioural tests (the PR 10 tentpole): a federate
//! killed mid-run by a seeded [`FaultPlan`] restarts from its durable
//! event log, replays every logged input and processed tag into a fresh
//! runtime, suppresses outbound messages the wire already saw, rejoins
//! the coordinator with a `Rejoin` frame, and resumes live — with
//! post-rejoin traces and fingerprints **byte-identical** to a run that
//! never crashed, under the flat RTI and the two-level hierarchy, with
//! the control diet on and off.

use dear_core::{ProgramBuilder, Runtime, Tag};
use dear_federation::{
    CoordinatedPlatform, EventLog, HierarchicalRti, PlatformRecovery, Rti, ZoneId,
};
use dear_sim::{
    FaultPlan, LatencyModel, LinkConfig, NetworkHandle, NodeId, Simulation, VirtualClock,
};
use dear_someip::{Binding, SdRegistry, ServiceInstance};
use dear_time::{Duration, Instant};
use dear_transactors::{
    ClientEventTransactor, DearConfig, EventSpec, Outbox, ServerEventTransactor,
};
use proptest::prelude::*;
use std::cell::RefCell;
use std::rc::Rc;
use std::sync::{Arc, Mutex};

const SERVICE_PING: u16 = 0x0100;
const INSTANCE: u16 = 1;
const EVENTGROUP: u16 = 1;
const EVENT: u16 = 0x8001;

fn spec() -> EventSpec {
    EventSpec {
        service: SERVICE_PING,
        instance: INSTANCE,
        eventgroup: EVENTGROUP,
        event: EVENT,
    }
}

#[derive(Clone, Copy, PartialEq)]
enum Coordinator {
    Flat,
    TwoZones,
}

/// FNV-1a over little-endian words.
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Self(0xcbf2_9ce4_8422_2325)
    }

    fn eat(&mut self, v: u64) {
        for b in v.to_le_bytes() {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0100_0000_01b3);
        }
    }
}

/// Where and for how long the fault campaign kills one chain member.
#[derive(Clone, Copy)]
struct CrashSpec {
    member: usize,
    at: Instant,
    dead_for: Duration,
}

struct ChainReport {
    /// FNV over every member's processed count, max tag and full runtime
    /// trace fingerprint (replay re-executes history into the fresh
    /// runtime, so a recovered member's trace covers its whole life).
    fingerprint: u64,
    recovery: Option<PlatformRecovery>,
    rejoins: u64,
    bound_breaches: u64,
}

const CHAIN_ZONES: usize = 2;
const CHAIN_MEMBERS: usize = 3;

/// Six timer-only federates in one global chain `m0 → … → m5` (crossing
/// the zone boundary when hierarchical), 10 ms timers, 1 ms edges,
/// heartbeats and liveness on — so a crashed member is declared dead,
/// its floor released to survivors, and the `Rejoin` retreat path runs
/// end to end on recovery. The horizon (155 ms) sits off the timer
/// lattice so both runs settle on the same final tag regardless of
/// which gate — grant or clock — released it.
fn run_chain(
    seed: u64,
    coordinator: Coordinator,
    diet: bool,
    crash: Option<CrashSpec>,
) -> ChainReport {
    let n = CHAIN_ZONES * CHAIN_MEMBERS;
    let edge_delay = Duration::from_millis(1);
    let mut sim = Simulation::new(seed);
    let net = NetworkHandle::new(
        LinkConfig::ideal(Duration::from_micros(50)),
        sim.fork_rng("net"),
    );
    let sd = SdRegistry::new();

    let (flat, hier) = match coordinator {
        Coordinator::Flat => {
            let rti = Rti::new(&mut sim, &net, &sd, NodeId(0));
            if diet {
                rti.enable_control_diet();
            }
            rti.enable_liveness(Duration::from_millis(8));
            (Some(rti), None)
        }
        Coordinator::TwoZones => {
            let h = HierarchicalRti::new(&mut sim, &net, &sd, NodeId(0));
            for z in 0..CHAIN_ZONES {
                h.add_zone(&mut sim, &net, &sd, NodeId(1 + z as u16));
            }
            if diet {
                h.enable_control_diet();
            }
            h.enable_liveness(&mut sim, Duration::from_millis(8));
            (None, Some(h))
        }
    };

    let make_runtime = |name: &str| {
        let mut b = ProgramBuilder::new();
        {
            let mut r = b.reactor(name, 0u64);
            let t = r.timer(
                "tick",
                Duration::from_millis(10),
                Some(Duration::from_millis(10)),
            );
            r.reaction("tick")
                .triggered_by(t)
                .body(|ticks: &mut u64, _| *ticks += 1);
            r.finish();
        }
        let mut rt = Runtime::new(b.build().unwrap());
        rt.enable_tracing();
        rt
    };

    let mut platforms = Vec::with_capacity(n);
    for i in 0..n {
        let name = format!("m{i}");
        let node = NodeId((1 + CHAIN_ZONES + i) as u16);
        let binding = Binding::new(&net, &sd, node, 0x1000 + i as u16);
        let runtime = make_runtime(&name);
        let rng = sim.fork_rng(&name);
        let p = match (&flat, &hier) {
            (Some(rti), None) => CoordinatedPlatform::new(
                &name,
                runtime,
                VirtualClock::ideal(),
                Outbox::new(),
                rng,
                rti,
                &binding,
                false,
            ),
            (None, Some(h)) => CoordinatedPlatform::new_in_zone(
                &name,
                runtime,
                VirtualClock::ideal(),
                Outbox::new(),
                rng,
                h,
                ZoneId((i / CHAIN_MEMBERS) as u16),
                &binding,
                false,
            )
            .unwrap(),
            _ => unreachable!(),
        };
        p.attach_durable(EventLog::in_memory());
        p.set_snapshot_every(4); // exercise checkpoint + segment rotation
        platforms.push(p);
    }
    for w in platforms.windows(2) {
        let (u, d) = (w[0].federate_id(), w[1].federate_id());
        match (&flat, &hier) {
            (Some(rti), None) => rti.connect(u, d, edge_delay),
            (None, Some(h)) => h.connect(u, d, edge_delay),
            _ => unreachable!(),
        }
    }

    for p in &platforms {
        p.start(&mut sim);
        p.enable_heartbeat(&mut sim, Duration::from_millis(4));
    }

    let recovery: Rc<RefCell<Option<PlatformRecovery>>> = Rc::new(RefCell::new(None));
    if let Some(c) = crash {
        let target = platforms[c.member].clone();
        let node = NodeId((1 + CHAIN_ZONES + c.member) as u16);
        let name = format!("m{}", c.member);
        let report_slot = recovery.clone();
        net.on_node_event(move |sim, event_node, up| {
            if event_node != node {
                return;
            }
            if up {
                let fresh = make_runtime(&name);
                *report_slot.borrow_mut() = Some(target.recover(sim, fresh));
            } else {
                target.crash(sim);
            }
        });
        let mut faults = FaultPlan::new();
        faults.crash_node(c.at, node);
        faults.restore_node(c.at + c.dead_for, node);
        faults.apply(&mut sim, &net);
    }

    sim.run_until(Instant::from_millis(155));

    let mut h = Fnv::new();
    let mut bound_breaches = 0;
    for p in &platforms {
        bound_breaches += p.coordination_stats().bound_breaches();
        let tags = p.stats().processed_tags;
        let max = p.max_processed_tag().unwrap_or(Tag::ORIGIN);
        h.eat(tags);
        h.eat(max.time.as_nanos());
        h.eat(u64::from(max.microstep));
        h.eat(p.with_runtime(|rt| rt.take_trace().fingerprint()));
    }
    let taken = recovery.borrow_mut().take();
    ChainReport {
        fingerprint: h.0,
        recovery: taken,
        rejoins: match (&flat, &hier) {
            (Some(rti), None) => rti.stats().rejoins,
            (None, Some(h)) => h.stats().rejoins,
            _ => unreachable!(),
        },
        bound_breaches,
    }
}

/// Crash + rejoin leaves the fleet's processed-tag traces byte-identical
/// to a never-crashed run — flat and hierarchical, control diet on and
/// off, across four seeds — while the coordinator registers the rejoin
/// and nobody breaches a bound.
#[test]
fn crash_rejoin_is_trace_identical_across_seeds() {
    for (i, seed) in [1u64, 5, 9, 13].into_iter().enumerate() {
        let crash = CrashSpec {
            member: (seed as usize) % (CHAIN_ZONES * CHAIN_MEMBERS),
            at: Instant::from_millis(42 + 7 * i as u64),
            dead_for: Duration::from_millis(20),
        };
        for coordinator in [Coordinator::Flat, Coordinator::TwoZones] {
            for diet in [false, true] {
                let label = match coordinator {
                    Coordinator::Flat => format!("seed {seed} flat diet={diet}"),
                    Coordinator::TwoZones => format!("seed {seed} hier diet={diet}"),
                };
                let baseline = run_chain(seed, coordinator, diet, None);
                let crashed = run_chain(seed, coordinator, diet, Some(crash));
                assert_eq!(
                    baseline.fingerprint, crashed.fingerprint,
                    "{label}: crash+rejoin changed the trace"
                );
                let report = crashed.recovery.expect("recovery ran");
                assert!(
                    report.replayed_tags > 0,
                    "{label}: nothing was replayed ({report})"
                );
                assert_eq!(report.replay_mismatches, 0, "{label}: {report}");
                assert!(crashed.rejoins >= 1, "{label}: no rejoin reached the RTI");
                assert_eq!(crashed.bound_breaches, 0, "{label}");
                assert_eq!(baseline.bound_breaches, 0, "{label}");
            }
        }
    }
}

/// Crashing the DNET-suppressed chain tail *inside a grant-ahead window*
/// (control diet on): the logged windowed grant restores the horizon on
/// recovery and the trace still matches the never-crashed run.
#[test]
fn crash_in_dnet_suppressed_window_recovers_identically() {
    let crash = CrashSpec {
        member: CHAIN_ZONES * CHAIN_MEMBERS - 1, // the suppressed sink
        at: Instant::from_millis(47),
        dead_for: Duration::from_millis(20),
    };
    for coordinator in [Coordinator::Flat, Coordinator::TwoZones] {
        let baseline = run_chain(3, coordinator, true, None);
        let crashed = run_chain(3, coordinator, true, Some(crash));
        assert_eq!(baseline.fingerprint, crashed.fingerprint);
        let report = crashed.recovery.expect("recovery ran");
        assert!(
            report.restored_bound.is_some(),
            "no bound restored: {report}"
        );
        assert_eq!(report.replay_mismatches, 0);
        assert_eq!(crashed.bound_breaches, 0);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Property form: crash at a *random* member and tag, under a random
    /// seed — flat and hierarchical, diet on and off — and the rejoined
    /// run's fingerprint equals the uncrashed one.
    #[test]
    fn crash_rejoin_preserves_fingerprints(
        seed in any::<u64>(),
        member in 0usize..CHAIN_ZONES * CHAIN_MEMBERS,
        at_ms in 30u64..80,
        dead_ms in 12i64..25,
    ) {
        let crash = CrashSpec {
            member,
            at: Instant::from_millis(at_ms),
            dead_for: Duration::from_millis(dead_ms),
        };
        for coordinator in [Coordinator::Flat, Coordinator::TwoZones] {
            for diet in [false, true] {
                let baseline = run_chain(seed, coordinator, diet, None);
                let crashed = run_chain(seed, coordinator, diet, Some(crash));
                prop_assert_eq!(baseline.fingerprint, crashed.fingerprint);
                prop_assert_eq!(crashed.bound_breaches, 0);
            }
        }
    }
}

/// Data-plane producer crash: the emitter dies *between a processed tag
/// and its scheduled outbox drain* (a modelled 3 ms compute cost holds
/// the batch), so recovery must suppress the two already-sent events
/// and re-send the stranded one. The consumer — alive throughout — sees
/// the exact `(tag, value)` trace of a never-crashed run.
#[test]
fn producer_crash_suppresses_and_resends_exactly_once() {
    fn run(crash: bool) -> (Vec<(Tag, u8)>, Option<PlatformRecovery>, u64) {
        let deadline = Duration::from_millis(2);
        let cfg = DearConfig::new(Duration::from_millis(1), Duration::ZERO);
        let edge_delay = deadline + cfg.stp_offset();

        let mut sim = Simulation::new(11);
        let net = NetworkHandle::new(
            LinkConfig::ideal(Duration::from_micros(100)),
            sim.fork_rng("net"),
        );
        let sd = SdRegistry::new();
        let rti = Rti::new(&mut sim, &net, &sd, NodeId(0));

        let outbox = Outbox::new();
        let make_producer_runtime = {
            let outbox = outbox.clone();
            move || {
                let mut b = ProgramBuilder::new();
                let publish = ServerEventTransactor::declare(&mut b, &outbox, "ping", deadline);
                let emit_rid;
                {
                    let mut logic = b.reactor("producer", 0u8);
                    let out = logic.output::<dear_someip::FrameBuf>("out");
                    let t = logic.timer(
                        "emit",
                        Duration::from_millis(10),
                        Some(Duration::from_millis(10)),
                    );
                    emit_rid = logic.reaction("emit").triggered_by(t).effects(out).body(
                        move |n: &mut u8, ctx| {
                            *n += 1;
                            if *n <= 10 {
                                ctx.set(out, vec![*n].into());
                            }
                        },
                    );
                    logic.finish();
                    b.connect(out, publish.event).unwrap();
                }
                (Runtime::new(b.build().unwrap()), publish, emit_rid)
            }
        };

        let binding = Binding::new(&net, &sd, NodeId(1), 0x11);
        binding.offer(
            &mut sim,
            ServiceInstance::new(SERVICE_PING, INSTANCE),
            Duration::from_secs(1 << 20),
        );
        let (runtime, publish, emit_rid) = make_producer_runtime();
        let producer = CoordinatedPlatform::new(
            "producer",
            runtime,
            VirtualClock::ideal(),
            outbox.clone(),
            sim.fork_rng("producer-costs"),
            &rti,
            &binding,
            false,
        );
        publish.bind(&producer, &binding, spec());
        producer.attach_durable(EventLog::in_memory());
        producer.set_snapshot_every(3);
        // The cost defers each drain by 3 ms past the processed tag —
        // the window the crash lands in.
        producer.set_reaction_cost(emit_rid, LatencyModel::constant(Duration::from_millis(3)));

        let seen: Arc<Mutex<Vec<(Tag, u8)>>> = Arc::new(Mutex::new(Vec::new()));
        let consumer = {
            let outbox = Outbox::new();
            let mut b = ProgramBuilder::new();
            let input = ClientEventTransactor::declare(&mut b, "ping");
            {
                let mut logic = b.reactor("consumer", ());
                let sink = seen.clone();
                logic
                    .reaction("collect")
                    .triggered_by(input.event)
                    .body(move |_, ctx| {
                        let v = ctx.get(input.event).unwrap()[0];
                        sink.lock().unwrap().push((ctx.tag(), v));
                    });
                logic.finish();
            }
            let binding = Binding::new(&net, &sd, NodeId(2), 0x22);
            let platform = CoordinatedPlatform::new(
                "consumer",
                Runtime::new(b.build().unwrap()),
                VirtualClock::ideal(),
                outbox,
                sim.fork_rng("consumer-costs"),
                &rti,
                &binding,
                false,
            );
            input.bind(&platform, &binding, spec(), cfg);
            platform
        };
        rti.connect(producer.federate_id(), consumer.federate_id(), edge_delay);

        producer.start(&mut sim);
        consumer.start(&mut sim);

        if crash {
            let target = producer.clone();
            let outbox_for_reset = outbox.clone();
            let make = make_producer_runtime.clone();
            net.on_node_event(move |sim, node, up| {
                if node != NodeId(1) {
                    return;
                }
                if up {
                    // Rebuild the identical program against the reset
                    // outbox so the transactor re-claims the same route.
                    outbox_for_reset.reset();
                    let (fresh, _, _) = make();
                    target.recover(sim, fresh);
                } else {
                    target.crash(sim);
                }
            });
            let mut faults = FaultPlan::new();
            faults.crash_node(Instant::from_millis(41), NodeId(1));
            faults.restore_node(Instant::from_millis(55), NodeId(1));
            faults.apply(&mut sim, &net);
        }

        sim.run_until(Instant::from_millis(200));
        let trace = seen.lock().unwrap().clone();
        let suppressed = producer.coordination_stats().replay_suppressed();
        (trace, producer.last_recovery(), suppressed)
    }

    let (baseline, none, _) = run(false);
    assert!(none.is_none());
    assert_eq!(baseline.len(), 10, "baseline lost events");

    let (recovered, report, suppressed) = run(true);
    let report = report.expect("recovery ran");
    assert_eq!(
        baseline, recovered,
        "consumer trace diverged after producer crash+rejoin ({report})"
    );
    assert_eq!(report.replay_mismatches, 0, "{report}");
    // Tags 10..=30 ms were drained pre-crash (suppressed on replay);
    // tag 40 ms was processed but its drain was stranded — re-sent.
    assert_eq!(suppressed, 3, "{report}");
    assert_eq!(report.suppressed_sends, 3, "{report}");
    assert_eq!(report.resent_sends, 1, "{report}");
}

/// Data-plane consumer crash with durable inputs: events that arrive
/// while the federate is down land in its log (the durable-inbox
/// property), and recovery replays logged pre-crash inputs plus the
/// banked ones into the fresh runtime — the rebuilt `(tag, value)`
/// history equals the never-crashed run's.
#[test]
fn consumer_crash_rebuilds_inputs_from_the_log() {
    fn run(crash: bool) -> (Vec<(Tag, u8)>, Option<PlatformRecovery>, u64) {
        let deadline = Duration::from_millis(2);
        let cfg = DearConfig::new(Duration::from_millis(1), Duration::ZERO);
        let edge_delay = deadline + cfg.stp_offset();

        let mut sim = Simulation::new(23);
        let net = NetworkHandle::new(
            LinkConfig::ideal(Duration::from_micros(100)),
            sim.fork_rng("net"),
        );
        let sd = SdRegistry::new();
        let rti = Rti::new(&mut sim, &net, &sd, NodeId(0));

        let producer =
            {
                let outbox = Outbox::new();
                let mut b = ProgramBuilder::new();
                let publish = ServerEventTransactor::declare(&mut b, &outbox, "ping", deadline);
                {
                    let mut logic = b.reactor("producer", 0u8);
                    let out = logic.output::<dear_someip::FrameBuf>("out");
                    let t = logic.timer(
                        "emit",
                        Duration::from_millis(10),
                        Some(Duration::from_millis(10)),
                    );
                    logic.reaction("emit").triggered_by(t).effects(out).body(
                        move |n: &mut u8, ctx| {
                            *n += 1;
                            if *n <= 10 {
                                ctx.set(out, vec![*n].into());
                            }
                        },
                    );
                    logic.finish();
                    b.connect(out, publish.event).unwrap();
                }
                let binding = Binding::new(&net, &sd, NodeId(1), 0x11);
                binding.offer(
                    &mut sim,
                    ServiceInstance::new(SERVICE_PING, INSTANCE),
                    Duration::from_secs(1 << 20),
                );
                let platform = CoordinatedPlatform::new(
                    "producer",
                    Runtime::new(b.build().unwrap()),
                    VirtualClock::ideal(),
                    outbox.clone(),
                    sim.fork_rng("producer-costs"),
                    &rti,
                    &binding,
                    false,
                );
                publish.bind(&platform, &binding, spec());
                platform
            };

        let seen: Arc<Mutex<Vec<(Tag, u8)>>> = Arc::new(Mutex::new(Vec::new()));
        let make_consumer_runtime = {
            let seen = seen.clone();
            move || {
                let mut b = ProgramBuilder::new();
                let input = ClientEventTransactor::declare(&mut b, "ping");
                {
                    let mut logic = b.reactor("consumer", ());
                    let sink = seen.clone();
                    logic
                        .reaction("collect")
                        .triggered_by(input.event)
                        .body(move |_, ctx| {
                            let v = ctx.get(input.event).unwrap()[0];
                            sink.lock().unwrap().push((ctx.tag(), v));
                        });
                    logic.finish();
                }
                (Runtime::new(b.build().unwrap()), input)
            }
        };

        let binding = Binding::new(&net, &sd, NodeId(2), 0x22);
        let (runtime, input) = make_consumer_runtime();
        let consumer = CoordinatedPlatform::new(
            "consumer",
            runtime,
            VirtualClock::ideal(),
            Outbox::new(),
            sim.fork_rng("consumer-costs"),
            &rti,
            &binding,
            false,
        );
        let stats = input.bind(&consumer, &binding, spec(), cfg);
        consumer.attach_durable(EventLog::in_memory());
        consumer.set_snapshot_every(3);
        consumer.register_durable_input(
            input.action(),
            |frame| frame.to_vec(),
            |bytes| Some(bytes.to_vec().into()),
        );
        rti.connect(producer.federate_id(), consumer.federate_id(), edge_delay);

        producer.start(&mut sim);
        consumer.start(&mut sim);

        if crash {
            let target = consumer.clone();
            let make = make_consumer_runtime.clone();
            let sink = seen.clone();
            net.on_node_event(move |sim, node, up| {
                if node != NodeId(2) {
                    return;
                }
                if up {
                    // Replay re-executes history, refilling the sink from
                    // scratch — clear the partial pre-crash view first.
                    sink.lock().unwrap().clear();
                    let (fresh, _) = make();
                    target.recover(sim, fresh);
                } else {
                    target.crash(sim);
                }
            });
            let mut faults = FaultPlan::new();
            faults.crash_node(Instant::from_millis(35), NodeId(2));
            faults.restore_node(Instant::from_millis(75), NodeId(2));
            faults.apply(&mut sim, &net);
        }

        sim.run_until(Instant::from_millis(200));
        let trace = seen.lock().unwrap().clone();
        (trace, consumer.last_recovery(), stats.stp_violations())
    }

    let (baseline, none, baseline_stp) = run(false);
    assert!(none.is_none());
    assert_eq!(baseline.len(), 10, "baseline lost events");
    assert_eq!(baseline_stp, 0);

    let (recovered, report, stp) = run(true);
    let report = report.expect("recovery ran");
    assert_eq!(
        baseline, recovered,
        "consumer trace diverged after its own crash+rejoin ({report})"
    );
    assert_eq!(stp, 0, "late injections violated safe-to-process");
    assert_eq!(report.replay_mismatches, 0, "{report}");
    // Three events were live pre-crash; four more arrived while down and
    // were banked straight into the log by the durable inbox.
    assert!(
        report.replayed_inputs >= 7,
        "expected >=7 replayed inputs: {report}"
    );
    assert!(report.replayed_tags >= 3, "{report}");
}
