//! Behavioural tests of centralized coordination: grant flow on a
//! two-federate pipeline, the never-beyond-bound invariant, and the PTAG
//! path that keeps zero-delay cycles live.

use dear_core::{ProgramBuilder, Runtime, Tag};
use dear_federation::{CoordinatedPlatform, Rti, TAG_MAX};
use dear_sim::{LinkConfig, NetworkHandle, NodeId, Simulation, VirtualClock};
use dear_someip::{Binding, SdRegistry, ServiceInstance};
use dear_time::{Duration, Instant};
use dear_transactors::{
    ClientEventTransactor, DearConfig, EventSpec, Outbox, ServerEventTransactor,
};
use std::sync::{Arc, Mutex};

const SERVICE_PING: u16 = 0x0100;
const SERVICE_PONG: u16 = 0x0200;
const INSTANCE: u16 = 1;
const EVENTGROUP: u16 = 1;
const EVENT: u16 = 0x8001;

fn spec(service: u16) -> EventSpec {
    EventSpec {
        service,
        instance: INSTANCE,
        eventgroup: EVENTGROUP,
        event: EVENT,
    }
}

/// A producer timer federate feeding a consumer federate: grants must
/// release every event, tags must follow the `t + D + L + E` algebra, and
/// no tag may ever be processed beyond the granted bound.
#[test]
fn pipeline_runs_under_rti_grants() {
    let deadline = Duration::from_millis(2);
    let latency_bound = Duration::from_millis(1);
    let cfg = DearConfig::new(latency_bound, Duration::ZERO);
    let edge_delay = deadline + cfg.stp_offset();

    let mut sim = Simulation::new(3);
    let net = NetworkHandle::new(
        LinkConfig::ideal(Duration::from_micros(100)),
        sim.fork_rng("net"),
    );
    let sd = SdRegistry::new();
    let rti = Rti::new(&mut sim, &net, &sd, NodeId(0));

    // Producer: emits 5 payloads on a 10ms timer.
    let producer = {
        let outbox = Outbox::new();
        let mut b = ProgramBuilder::new();
        let publish = ServerEventTransactor::declare(&mut b, &outbox, "ping", deadline);
        {
            let mut logic = b.reactor("producer", 0u8);
            let out = logic.output::<dear_someip::FrameBuf>("out");
            let t = logic.timer(
                "emit",
                Duration::from_millis(10),
                Some(Duration::from_millis(10)),
            );
            logic
                .reaction("emit")
                .triggered_by(t)
                .effects(out)
                .body(move |n: &mut u8, ctx| {
                    *n += 1;
                    if *n <= 5 {
                        ctx.set(out, vec![*n].into());
                    }
                });
            logic.finish();
            b.connect(out, publish.event).unwrap();
        }
        let binding = Binding::new(&net, &sd, NodeId(1), 0x11);
        binding.offer(
            &mut sim,
            ServiceInstance::new(SERVICE_PING, INSTANCE),
            Duration::from_secs(1 << 20),
        );
        let platform = CoordinatedPlatform::new(
            "producer",
            Runtime::new(b.build().unwrap()),
            VirtualClock::ideal(),
            Outbox::clone(&outbox),
            sim.fork_rng("producer-costs"),
            &rti,
            &binding,
            false,
        );
        publish.bind(&platform, &binding, spec(SERVICE_PING));
        platform
    };

    // Consumer: collects (tag, value).
    let seen: Arc<Mutex<Vec<(Tag, u8)>>> = Arc::new(Mutex::new(Vec::new()));
    let (consumer, consumer_stats) = {
        let outbox = Outbox::new();
        let mut b = ProgramBuilder::new();
        let input = ClientEventTransactor::declare(&mut b, "ping");
        {
            let mut logic = b.reactor("consumer", ());
            let sink = seen.clone();
            logic
                .reaction("collect")
                .triggered_by(input.event)
                .body(move |_, ctx| {
                    let v = ctx.get(input.event).unwrap()[0];
                    sink.lock().unwrap().push((ctx.tag(), v));
                });
            logic.finish();
        }
        let binding = Binding::new(&net, &sd, NodeId(2), 0x22);
        let platform = CoordinatedPlatform::new(
            "consumer",
            Runtime::new(b.build().unwrap()),
            VirtualClock::ideal(),
            Outbox::clone(&outbox),
            sim.fork_rng("consumer-costs"),
            &rti,
            &binding,
            false,
        );
        let stats = input.bind(&platform, &binding, spec(SERVICE_PING), cfg);
        (platform, stats)
    };
    rti.connect(producer.federate_id(), consumer.federate_id(), edge_delay);

    producer.start(&mut sim);
    consumer.start(&mut sim);
    sim.run_until(Instant::from_secs(1));

    // All five events, at exactly t + D + L + E.
    let seen = seen.lock().unwrap().clone();
    assert_eq!(seen.len(), 5, "every event released under grants");
    for (i, (tag, v)) in seen.iter().enumerate() {
        let send_tag = Instant::from_millis(10 * (i as u64 + 1));
        assert_eq!(*v, i as u8 + 1);
        assert_eq!(*tag, Tag::at(send_tag + edge_delay), "event {i}");
    }
    assert_eq!(consumer_stats.stp_violations(), 0);

    // The producer has no upstream: it is granted the unbounded sentinel.
    assert_eq!(producer.granted_bound(), Some(TAG_MAX));

    // Coordination counters flowed on both sides.
    for p in [&producer, &consumer] {
        let cs = p.coordination_stats();
        assert!(cs.nets_sent() > 0, "{}: NETs", p.name());
        assert!(cs.ltcs_sent() > 0, "{}: LTCs", p.name());
        assert!(cs.grants_received() > 0, "{}: grants", p.name());
        assert_eq!(cs.bound_breaches(), 0, "{}: breaches", p.name());
        // The invariant the grants exist to enforce.
        let bound = p.granted_bound().expect("granted");
        assert!(p.max_processed_tag().expect("processed") < bound);
    }
    let rs = rti.stats();
    assert_eq!(rs.federates, 2);
    assert!(rs.tags_issued > 0);
    assert_eq!(rs.ptags_issued, 0, "no zero-delay cycle here");

    // The consumer genuinely waited on grants (its events release only
    // after the producer's LTC has crossed the network and come back as
    // a TAG), and the wait is visible in the counters.
    assert!(consumer.coordination_stats().grant_wait() > Duration::ZERO);
}

/// A zero-delay cycle (all deadlines and bounds zero, zero-latency
/// links): strict TAG bounds can never release the next microstep, so
/// progress must come from provisional PTAG grants — and does.
#[test]
fn zero_delay_cycle_progresses_via_ptags() {
    const ROUNDS: u8 = 8;
    let cfg = DearConfig::new(Duration::ZERO, Duration::ZERO);

    let mut sim = Simulation::new(9);
    let net = NetworkHandle::new(LinkConfig::ideal(Duration::ZERO), sim.fork_rng("net"));
    let sd = SdRegistry::new();
    let rti = Rti::new(&mut sim, &net, &sd, NodeId(0));

    let log: Arc<Mutex<Vec<u8>>> = Arc::new(Mutex::new(Vec::new()));

    // Federate A: kicks off at startup, then relays pong -> ping + 1.
    let (fed_a, stats_a) = {
        let outbox = Outbox::new();
        let mut b = ProgramBuilder::new();
        let publish = ServerEventTransactor::declare(&mut b, &outbox, "ping", Duration::ZERO);
        let input = ClientEventTransactor::declare(&mut b, "pong");
        {
            let mut logic = b.reactor("a_logic", ());
            let out = logic.output::<dear_someip::FrameBuf>("out");
            logic
                .reaction("kick")
                .triggered_by(dear_core::Startup)
                .effects(out)
                .body(move |_, ctx| ctx.set(out, vec![0].into()));
            let sink = log.clone();
            logic
                .reaction("relay")
                .triggered_by(input.event)
                .effects(out)
                .body(move |_, ctx| {
                    let v = ctx.get(input.event).unwrap()[0];
                    sink.lock().unwrap().push(v);
                    if v < ROUNDS {
                        ctx.set(out, vec![v + 1].into());
                    }
                });
            logic.finish();
            b.connect(out, publish.event).unwrap();
        }
        let binding = Binding::new(&net, &sd, NodeId(1), 0x11);
        binding.offer(
            &mut sim,
            ServiceInstance::new(SERVICE_PING, INSTANCE),
            Duration::from_secs(1 << 20),
        );
        let platform = CoordinatedPlatform::new(
            "a",
            Runtime::new(b.build().unwrap()),
            VirtualClock::ideal(),
            outbox,
            sim.fork_rng("a-costs"),
            &rti,
            &binding,
            false,
        );
        publish.bind(&platform, &binding, spec(SERVICE_PING));
        let stats = input.bind(&platform, &binding, spec(SERVICE_PONG), cfg);
        (platform, stats)
    };

    // Federate B: pure relay ping -> pong.
    let (fed_b, stats_b) = {
        let outbox = Outbox::new();
        let mut b = ProgramBuilder::new();
        let input = ClientEventTransactor::declare(&mut b, "ping");
        let publish = ServerEventTransactor::declare(&mut b, &outbox, "pong", Duration::ZERO);
        {
            let mut logic = b.reactor("b_logic", ());
            let out = logic.output::<dear_someip::FrameBuf>("out");
            logic
                .reaction("relay")
                .triggered_by(input.event)
                .effects(out)
                .body(move |_, ctx| {
                    let v = ctx.get(input.event).unwrap()[0];
                    ctx.set(out, vec![v].into());
                });
            logic.finish();
            b.connect(out, publish.event).unwrap();
        }
        let binding = Binding::new(&net, &sd, NodeId(2), 0x22);
        binding.offer(
            &mut sim,
            ServiceInstance::new(SERVICE_PONG, INSTANCE),
            Duration::from_secs(1 << 20),
        );
        let platform = CoordinatedPlatform::new(
            "b",
            Runtime::new(b.build().unwrap()),
            VirtualClock::ideal(),
            outbox,
            sim.fork_rng("b-costs"),
            &rti,
            &binding,
            false,
        );
        let stats = input.bind(&platform, &binding, spec(SERVICE_PING), cfg);
        publish.bind(&platform, &binding, spec(SERVICE_PONG));
        (platform, stats)
    };

    rti.connect(fed_a.federate_id(), fed_b.federate_id(), Duration::ZERO);
    rti.connect(fed_b.federate_id(), fed_a.federate_id(), Duration::ZERO);

    fed_a.start(&mut sim);
    fed_b.start(&mut sim);
    sim.run_until(Instant::from_secs(1));

    // Every round came back, in order, all at time 0 (microsteps only).
    let log = log.lock().unwrap().clone();
    assert_eq!(log, (0..=ROUNDS).collect::<Vec<u8>>());
    assert_eq!(
        fed_a.max_processed_tag().unwrap().time,
        Instant::EPOCH,
        "the whole exchange happens at logical time zero"
    );
    assert!(
        rti.stats().ptags_issued > u64::from(ROUNDS),
        "each microstep round needs a provisional grant: {}",
        rti.stats()
    );
    for stats in [&stats_a, &stats_b] {
        assert_eq!(stats.stp_violations(), 0);
    }
    for p in [&fed_a, &fed_b] {
        assert_eq!(p.coordination_stats().bound_breaches(), 0);
        assert!(p.coordination_stats().ptags_received() > 0);
    }
}

/// Federate death: a producer whose control link to the RTI is severed
/// mid-run stops reporting. With liveness + heartbeats enabled, the RTI
/// declares it dead at a well-defined tag and releases its LBTS
/// contribution, so the consumer keeps advancing on the still-flowing
/// data plane; without liveness the consumer stalls forever on the
/// never-advancing grant. Runs the identical scenario both ways.
#[test]
fn dead_federate_releases_lbts_for_survivors() {
    fn run(enable_liveness: bool) -> (u64, usize, u64) {
        let deadline = Duration::from_millis(2);
        let cfg = DearConfig::new(Duration::from_millis(1), Duration::ZERO);
        let edge_delay = deadline + cfg.stp_offset();

        let mut sim = Simulation::new(11);
        sim.enable_tracing();
        let net = NetworkHandle::new(
            LinkConfig::ideal(Duration::from_micros(100)),
            sim.fork_rng("net"),
        );
        let sd = SdRegistry::new();
        let rti = Rti::new(&mut sim, &net, &sd, NodeId(0));
        if enable_liveness {
            rti.enable_liveness(Duration::from_millis(50));
        }

        // Producer: emits 5 payloads on a 10ms timer (as above).
        let producer =
            {
                let outbox = Outbox::new();
                let mut b = ProgramBuilder::new();
                let publish = ServerEventTransactor::declare(&mut b, &outbox, "ping", deadline);
                {
                    let mut logic = b.reactor("producer", 0u8);
                    let out = logic.output::<dear_someip::FrameBuf>("out");
                    let t = logic.timer(
                        "emit",
                        Duration::from_millis(10),
                        Some(Duration::from_millis(10)),
                    );
                    logic.reaction("emit").triggered_by(t).effects(out).body(
                        move |n: &mut u8, ctx| {
                            *n += 1;
                            if *n <= 5 {
                                ctx.set(out, vec![*n].into());
                            }
                        },
                    );
                    logic.finish();
                    b.connect(out, publish.event).unwrap();
                }
                let binding = Binding::new(&net, &sd, NodeId(1), 0x11);
                binding.offer(
                    &mut sim,
                    ServiceInstance::new(SERVICE_PING, INSTANCE),
                    Duration::from_secs(1 << 20),
                );
                let platform = CoordinatedPlatform::new(
                    "producer",
                    Runtime::new(b.build().unwrap()),
                    VirtualClock::ideal(),
                    Outbox::clone(&outbox),
                    sim.fork_rng("producer-costs"),
                    &rti,
                    &binding,
                    false,
                );
                publish.bind(&platform, &binding, spec(SERVICE_PING));
                platform
            };

        let seen: Arc<Mutex<Vec<u8>>> = Arc::new(Mutex::new(Vec::new()));
        let consumer = {
            let outbox = Outbox::new();
            let mut b = ProgramBuilder::new();
            let input = ClientEventTransactor::declare(&mut b, "ping");
            {
                let mut logic = b.reactor("consumer", ());
                let sink = seen.clone();
                logic
                    .reaction("collect")
                    .triggered_by(input.event)
                    .body(move |_, ctx| {
                        sink.lock().unwrap().push(ctx.get(input.event).unwrap()[0]);
                    });
                logic.finish();
            }
            let binding = Binding::new(&net, &sd, NodeId(2), 0x22);
            let platform = CoordinatedPlatform::new(
                "consumer",
                Runtime::new(b.build().unwrap()),
                VirtualClock::ideal(),
                Outbox::clone(&outbox),
                sim.fork_rng("consumer-costs"),
                &rti,
                &binding,
                false,
            );
            input.bind(&platform, &binding, spec(SERVICE_PING), cfg);
            platform
        };
        rti.connect(producer.federate_id(), consumer.federate_id(), edge_delay);

        producer.start(&mut sim);
        consumer.start(&mut sim);
        // Heartbeats keep blocked-but-alive federates distinguishable
        // from dead ones.
        producer.enable_heartbeat(&mut sim, Duration::from_millis(10));
        consumer.enable_heartbeat(&mut sim, Duration::from_millis(10));

        // Sever the producer's control uplink after its third event: NET
        // and LTC reports (and heartbeats) stop reaching the RTI, while
        // the data plane (producer node -> consumer node) keeps flowing.
        let mut faults = dear_sim::FaultPlan::new();
        faults.kill_link(Instant::from_millis(35), NodeId(1), NodeId(0));
        faults.apply(&mut sim, &net);

        sim.run_until(Instant::from_secs(1));

        let deaths = rti.stats().deaths;
        let seen = seen.lock().unwrap().len();
        let death_traces = sim.trace_log().events_in("rti").count() as u64;
        (deaths, seen, death_traces)
    }

    let (deaths, seen, traces) = run(true);
    assert_eq!(deaths, 1, "the silent producer is declared dead");
    assert_eq!(traces, 1, "the death lands in the trace");
    assert_eq!(
        seen, 5,
        "survivors keep advancing: the in-flight data plane drains fully"
    );

    let (deaths, seen, _) = run(false);
    assert_eq!(deaths, 0);
    assert!(
        seen < 5,
        "without liveness the consumer stalls on the dead producer's bound (saw {seen})"
    );
}

/// A grant-kind echo arriving at the RTI must neither count as a sign of
/// life nor disarm the pending liveness check — regression for the
/// generation bump that used to run before the echo filter.
#[test]
fn grant_echoes_do_not_disarm_the_liveness_watchdog() {
    use dear_someip::{
        CoordKind, CoordMsg, COORD_INSTANCE, COORD_METHOD, COORD_SERVICE, TAG_NEVER,
    };

    let mut sim = Simulation::new(1);
    let net = NetworkHandle::new(
        LinkConfig::ideal(Duration::from_micros(100)),
        sim.fork_rng("net"),
    );
    let sd = SdRegistry::new();
    let rti = Rti::new(&mut sim, &net, &sd, NodeId(0));
    rti.enable_liveness(Duration::from_millis(50));

    let fed_binding = Binding::new(&net, &sd, NodeId(1), 0x11);
    let fed = rti.register("fed", NodeId(1), true).unwrap();
    let send = |sim: &mut Simulation, binding: &Binding, msg: CoordMsg| {
        binding
            .call_no_return(
                sim,
                COORD_SERVICE,
                COORD_INSTANCE,
                COORD_METHOD,
                msg.encode_into(&binding.pool()),
            )
            .unwrap();
    };
    // The federate joins, then goes silent forever.
    send(
        &mut sim,
        &fed_binding,
        CoordMsg::new(CoordKind::Join, fed.0, TAG_NEVER),
    );
    // Mid-silence, a stray grant echo reaches the RTI's method. It must
    // not supersede the liveness check armed by the Join.
    let echo_binding = fed_binding.clone();
    sim.schedule_at(Instant::from_millis(30), move |sim| {
        send(
            sim,
            &echo_binding,
            CoordMsg::new(CoordKind::Tag, fed.0, TAG_NEVER),
        );
    });

    sim.run_until(Instant::from_secs(1));
    assert_eq!(
        rti.stats().deaths,
        1,
        "the silent federate must still be declared dead: {}",
        rti.stats()
    );
}

/// Without an RTI grant the consumer must sit on its pending event
/// forever — the runtime's bound gating is what enforces "never process
/// beyond the last granted bound".
#[test]
fn unconnected_topology_blocks_consumer() {
    let mut sim = Simulation::new(5);
    let net = NetworkHandle::new(LinkConfig::ideal(Duration::ZERO), sim.fork_rng("net"));
    let sd = SdRegistry::new();
    let rti = Rti::new(&mut sim, &net, &sd, NodeId(0));

    let mut b = ProgramBuilder::new();
    let mut r = b.reactor("lonely", 0u32);
    let t = r.timer("t", Duration::ZERO, Some(Duration::from_millis(1)));
    r.reaction("tick")
        .triggered_by(t)
        .body(|n: &mut u32, _| *n += 1);
    r.finish();
    let binding = Binding::new(&net, &sd, NodeId(1), 0x11);
    let platform = CoordinatedPlatform::new(
        "lonely",
        Runtime::new(b.build().unwrap()),
        VirtualClock::ideal(),
        Outbox::new(),
        sim.fork_rng("costs"),
        &rti,
        &binding,
        false,
    );
    // A phantom upstream that never joins: its floor stays at origin, so
    // no grant can ever cover the consumer's first tag.
    let ghost = rti.register("ghost", NodeId(9), true).unwrap();
    rti.connect(ghost, platform.federate_id(), Duration::from_millis(1));

    platform.start(&mut sim);
    sim.run_until(Instant::from_secs(1));

    // The ghost's floor is stuck at the origin, so the only grant ever
    // issued is edge_add(origin, 1ms): exactly one timer tick (t = 0)
    // fits below it; the t = 1ms tick waits forever.
    assert_eq!(platform.stats().processed_tags, 1);
    assert_eq!(platform.max_processed_tag(), Some(Tag::ORIGIN));
    assert_eq!(
        platform.granted_bound(),
        Some(Tag::at(Instant::from_millis(1)))
    );
    assert!(platform.stats().bound_deferrals > 0 || platform.stats().processed_tags == 1);
}
