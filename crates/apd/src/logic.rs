//! The pure computational logic of the brake-assistant stages.
//!
//! Both the nondeterministic (AP-style) and the deterministic (DEAR)
//! builds call these same functions — mirroring the paper's port, where
//! "the original implementation separates computational logic from the
//! communication mechanism" so only the coordination layer changes
//! (§IV.B). All functions are pure in the frame id, so output differences
//! between the two builds can only come from coordination, never from the
//! logic.

use crate::types::{mix, Frame, LaneBox, Vehicle, VehicleList};
use dear_sim::LatencyModel;
use dear_time::Duration;

/// Distance threshold below which the EBA commands an emergency brake.
pub const BRAKE_DISTANCE_MM: u32 = 30_000;

/// Computes the travel-lane bounding box for a frame (Preprocessing).
#[must_use]
pub fn preprocess(frame: &Frame) -> LaneBox {
    let h = mix(frame.id);
    LaneBox {
        frame_id: frame.id,
        x0: (h & 0xFF) as u16,
        y0: ((h >> 8) & 0xFF) as u16,
        x1: 640 - ((h >> 16) & 0x3F) as u16,
        y1: 480 - ((h >> 24) & 0x3F) as u16,
    }
}

/// Detects vehicles in the lane (Computer Vision).
///
/// Detections are a pure function of the frame id; the lane argument is
/// validated for alignment by the callers (a mismatching lane is an
/// *input mismatch* error, counted by the instrumentation).
#[must_use]
pub fn detect_vehicles(frame: &Frame, lane: &LaneBox) -> VehicleList {
    debug_assert_eq!(frame.id, lane.frame_id, "callers must check alignment");
    let h = mix(frame.id ^ 0xC0FF_EE00);
    let count = (h % 4) as u32; // 0..=3 vehicles
    let vehicles = (0..count)
        .map(|i| {
            let vh = mix(h ^ u64::from(i));
            Vehicle {
                track: i,
                // 5 m .. ~85 m
                distance_mm: 5_000 + (vh % 80_000) as u32,
            }
        })
        .collect();
    VehicleList {
        frame_id: frame.id,
        capture_nanos: frame.capture_nanos,
        adapter_nanos: frame.adapter_nanos,
        vehicles,
    }
}

/// Decides whether an emergency brake maneuver is required (EBA).
#[must_use]
pub fn eba_decide(vehicles: &VehicleList) -> bool {
    vehicles
        .vehicles
        .iter()
        .any(|v| v.distance_mm < BRAKE_DISTANCE_MM)
}

/// The expected (reference) brake decision for a frame id, used by the
/// harnesses to verify end-to-end correctness of whatever made it through
/// the pipeline.
#[must_use]
pub fn reference_decision(frame_id: u64) -> bool {
    let frame = Frame::new(frame_id, 0);
    let lane = preprocess(&frame);
    eba_decide(&detect_vehicles(&frame, &lane))
}

/// Compute-time models of the pipeline stages.
///
/// The paper's deadline choices (5 / 25 / 25 / 5 ms) are "estimated upper
/// bounds" of these stage execution times on the MinnowBoard; the default
/// models keep the same relationship (mean well under the deadline,
/// jitter that stays below it in practice).
#[derive(Debug, Clone, PartialEq)]
pub struct StageTimings {
    /// Video Adapter processing time.
    pub adapter: LatencyModel,
    /// Preprocessing (lane detection) processing time.
    pub preprocessing: LatencyModel,
    /// Computer Vision (vehicle detection) processing time.
    pub computer_vision: LatencyModel,
    /// EBA decision processing time.
    pub eba: LatencyModel,
}

impl Default for StageTimings {
    fn default() -> Self {
        StageTimings {
            adapter: LatencyModel::normal(
                Duration::from_millis(2),
                Duration::from_micros(300),
                Duration::from_micros(100),
            ),
            preprocessing: LatencyModel::normal(
                Duration::from_millis(18),
                Duration::from_millis(1),
                Duration::from_millis(5),
            ),
            computer_vision: LatencyModel::normal(
                Duration::from_millis(18),
                Duration::from_millis(1),
                Duration::from_millis(5),
            ),
            eba: LatencyModel::normal(
                Duration::from_millis(1),
                Duration::from_micros(200),
                Duration::from_micros(50),
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preprocess_is_pure_and_id_stamped() {
        let f = Frame::new(10, 123);
        let a = preprocess(&f);
        let b = preprocess(&Frame::new(10, 456)); // different capture time
        assert_eq!(a, b, "content depends only on frame id");
        assert_eq!(a.frame_id, 10);
        assert!(a.x0 < a.x1 && a.y0 < a.y1, "box is well-formed");
    }

    #[test]
    fn detection_is_pure_and_bounded() {
        let f = Frame::new(77, 0);
        let lane = preprocess(&f);
        let a = detect_vehicles(&f, &lane);
        let b = detect_vehicles(&f, &lane);
        assert_eq!(a, b);
        assert!(a.vehicles.len() <= 3);
        for v in &a.vehicles {
            assert!(v.distance_mm >= 5_000);
        }
    }

    #[test]
    fn some_frames_brake_some_dont() {
        let decisions: Vec<bool> = (0..200).map(reference_decision).collect();
        let brakes = decisions.iter().filter(|&&b| b).count();
        assert!(brakes > 10, "some frames must trigger braking ({brakes})");
        assert!(
            brakes < 190,
            "not all frames may trigger braking ({brakes})"
        );
    }

    #[test]
    fn eba_threshold_behaviour() {
        let near = VehicleList {
            frame_id: 0,
            capture_nanos: 0,
            adapter_nanos: 0,
            vehicles: vec![Vehicle {
                track: 0,
                distance_mm: BRAKE_DISTANCE_MM - 1,
            }],
        };
        let far = VehicleList {
            frame_id: 0,
            capture_nanos: 0,
            adapter_nanos: 0,
            vehicles: vec![Vehicle {
                track: 0,
                distance_mm: BRAKE_DISTANCE_MM,
            }],
        };
        assert!(eba_decide(&near));
        assert!(!eba_decide(&far));
        assert!(!eba_decide(&VehicleList::default()));
    }

    #[test]
    fn default_timings_respect_paper_deadlines() {
        let t = StageTimings::default();
        // The paper's deadlines: adapter 5 ms, preprocessing 25 ms,
        // CV 25 ms, EBA 5 ms.
        assert!(t.adapter.upper_bound() <= Duration::from_millis(5));
        assert!(t.preprocessing.upper_bound() <= Duration::from_millis(25));
        assert!(t.computer_vision.upper_bound() <= Duration::from_millis(25));
        assert!(t.eba.upper_bound() <= Duration::from_millis(5));
    }
}
