//! The DEAR fix for the Figure 1 application.
//!
//! The paper argues that "the underlying model should allow for the
//! exploitation of concurrency in ways that preserve determinism" — the
//! client should neither serialize its calls by blocking on futures nor
//! force the server single-threaded. In the reactor version, the client
//! issues `set_value(1)`, `add(2)` and `get_value()` **at the same tag**
//! (all three in flight concurrently); the server processes the three
//! requests at one logical tag, ordered by reaction priority
//! (set → add → get). The printed value is 3 — always, by construction,
//! for every seed and any network jitter below the bound.

use crate::calculator::{CALC_INSTANCE, CALC_SERVICE, METHOD_ADD, METHOD_GET, METHOD_SET};
use dear_core::{Port, ProgramBuilder, Reaction, ReactionCtx, Reactor, Runtime, Timer};
use dear_sim::{LatencyModel, LinkConfig, NetworkHandle, NodeId, Simulation, VirtualClock};
use dear_someip::{Binding, FrameBuf, PayloadReader, PayloadWriter, SdRegistry, ServiceInstance};
use dear_time::{Duration, Instant};
use dear_transactors::{
    ClientMethodTransactor, DearConfig, FederatedPlatform, MethodSpec, Outbox,
    ServerMethodTransactor,
};
use std::sync::{Arc, Mutex};

fn encode_i64(v: i64) -> FrameBuf {
    let mut w = PayloadWriter::new();
    w.write_i64(v);
    w.into_frame()
}

fn decode_i64(bytes: &[u8]) -> i64 {
    let mut r = PayloadReader::new(bytes);
    r.read_i64().expect("calculator payload")
}

/// The server logic reactor: one reaction per method, priority order
/// (field declaration order) fixing the same-tag processing order
/// set → add → get. The transactor-owned request ports arrive as
/// `#[external]` handles at declare time.
#[derive(Reactor)]
#[reactor(state = i64)]
struct CalcServer {
    #[output]
    set_resp: Port<FrameBuf>,
    #[output]
    add_resp: Port<FrameBuf>,
    #[output]
    get_resp: Port<FrameBuf>,
    #[external]
    set_request: Port<FrameBuf>,
    #[external]
    add_request: Port<FrameBuf>,
    #[external]
    get_request: Port<FrameBuf>,
    #[reaction(triggers(set_request), effects(set_resp))]
    on_set: Reaction,
    #[reaction(triggers(add_request), effects(add_resp))]
    on_add: Reaction,
    #[reaction(triggers(get_request), effects(get_resp))]
    on_get: Reaction,
}

impl CalcServer {
    fn on_set(value: &mut i64, this: &Self, ctx: &mut ReactionCtx<'_>) {
        *value = decode_i64(ctx.get(this.set_request).unwrap());
        ctx.set(this.set_resp, encode_i64(*value));
    }

    fn on_add(value: &mut i64, this: &Self, ctx: &mut ReactionCtx<'_>) {
        *value += decode_i64(ctx.get(this.add_request).unwrap());
        ctx.set(this.add_resp, encode_i64(*value));
    }

    fn on_get(value: &mut i64, this: &Self, ctx: &mut ReactionCtx<'_>) {
        ctx.set(this.get_resp, encode_i64(*value));
    }
}

/// The client logic reactor: all three calls issued at one tag, the
/// printed value recorded in state when the `get` response arrives.
#[derive(Reactor)]
#[reactor(state = Arc<Mutex<Option<i64>>>)]
struct CalcClient {
    #[output]
    set_req: Port<FrameBuf>,
    #[output]
    add_req: Port<FrameBuf>,
    #[output]
    get_req: Port<FrameBuf>,
    #[timer(offset = Duration::from_millis(10))]
    fire: Timer,
    #[external]
    get_response: Port<FrameBuf>,
    #[reaction(triggers(fire), effects(set_req, add_req, get_req))]
    invoke_all: Reaction,
    #[reaction(triggers(get_response))]
    print: Reaction,
}

impl CalcClient {
    fn invoke_all(_: &mut Arc<Mutex<Option<i64>>>, this: &Self, ctx: &mut ReactionCtx<'_>) {
        // Concurrent, non-blocking, unordered in physical time —
        // yet deterministic: all three share the tag.
        ctx.set(this.set_req, encode_i64(1));
        ctx.set(this.add_req, encode_i64(2));
        ctx.set(this.get_req, FrameBuf::new());
    }

    fn print(sink: &mut Arc<Mutex<Option<i64>>>, this: &Self, ctx: &mut ReactionCtx<'_>) {
        *sink.lock().unwrap() = Some(decode_i64(ctx.get(this.get_response).unwrap()));
    }
}

/// Outcome of one DEAR calculator trial.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DetCalcOutcome {
    /// The value the client "prints".
    pub printed: i64,
    /// Observed safe-to-process violations (0 when bounds hold).
    pub stp_violations: u64,
}

/// Runs one trial of the reactor-based calculator.
///
/// `latency_bound` is the assumed `L`; the actual simulated latency is
/// jittered up to 2 ms, so bounds of 5 ms and above are safe.
#[must_use]
pub fn run_det_trial(seed: u64, latency_bound: Duration) -> DetCalcOutcome {
    let mut sim = Simulation::new(seed);
    let net = NetworkHandle::new(
        LinkConfig::with_latency(LatencyModel::uniform(
            Duration::from_micros(100),
            Duration::from_millis(2),
        )),
        sim.fork_rng("net"),
    );
    let sd = SdRegistry::new();
    let cfg = DearConfig::new(latency_bound, Duration::ZERO);
    let deadline = Duration::from_millis(1);
    let spec = |method: u16| MethodSpec {
        service: CALC_SERVICE,
        instance: CALC_INSTANCE,
        method,
    };

    // --- Server: a reactor with one reaction per method ------------------
    // Priority order (declaration order) fixes the same-tag processing
    // order: set, then add, then get.
    let outbox_s = Outbox::new();
    let mut bs = ProgramBuilder::new();
    let smt_set = ServerMethodTransactor::declare(&mut bs, &outbox_s, "set", deadline);
    let smt_add = ServerMethodTransactor::declare(&mut bs, &outbox_s, "add", deadline);
    let smt_get = ServerMethodTransactor::declare(&mut bs, &outbox_s, "get", deadline);
    let srv: CalcServer = bs.declare_ext(
        "calc_server",
        0i64,
        CalcServerExternals {
            set_request: smt_set.request,
            add_request: smt_add.request,
            get_request: smt_get.request,
        },
    );
    bs.connect(srv.set_resp, smt_set.response).unwrap();
    bs.connect(srv.add_resp, smt_add.response).unwrap();
    bs.connect(srv.get_resp, smt_get.response).unwrap();
    let server = FederatedPlatform::new(
        "calc-server",
        Runtime::new(bs.build().expect("server program")),
        VirtualClock::ideal(),
        outbox_s,
        sim.fork_rng("server-costs"),
    );
    let server_binding = Binding::new(&net, &sd, NodeId(1), 0x10);
    server_binding.offer(
        &mut sim,
        ServiceInstance::new(CALC_SERVICE, CALC_INSTANCE),
        Duration::from_secs(3600),
    );
    let s_set = smt_set.bind(&server, &server_binding, spec(METHOD_SET), cfg);
    let s_add = smt_add.bind(&server, &server_binding, spec(METHOD_ADD), cfg);
    let s_get = smt_get.bind(&server, &server_binding, spec(METHOD_GET), cfg);

    // --- Client: all three calls at one tag ------------------------------
    let printed: Arc<Mutex<Option<i64>>> = Arc::new(Mutex::new(None));
    let outbox_c = Outbox::new();
    let mut bc = ProgramBuilder::new();
    let cmt_set = ClientMethodTransactor::declare(&mut bc, &outbox_c, "set", deadline);
    let cmt_add = ClientMethodTransactor::declare(&mut bc, &outbox_c, "add", deadline);
    let cmt_get = ClientMethodTransactor::declare(&mut bc, &outbox_c, "get", deadline);
    let cli: CalcClient = bc.declare_ext(
        "calc_client",
        printed.clone(),
        CalcClientExternals {
            get_response: cmt_get.response,
        },
    );
    bc.connect(cli.set_req, cmt_set.request).unwrap();
    bc.connect(cli.add_req, cmt_add.request).unwrap();
    bc.connect(cli.get_req, cmt_get.request).unwrap();
    let client = FederatedPlatform::new(
        "calc-client",
        Runtime::new(bc.build().expect("client program")),
        VirtualClock::ideal(),
        outbox_c,
        sim.fork_rng("client-costs"),
    );
    let client_binding = Binding::new(&net, &sd, NodeId(2), 0x20);
    let c_set = cmt_set.bind(&client, &client_binding, spec(METHOD_SET), cfg);
    let c_add = cmt_add.bind(&client, &client_binding, spec(METHOD_ADD), cfg);
    let c_get = cmt_get.bind(&client, &client_binding, spec(METHOD_GET), cfg);

    server.start(&mut sim);
    client.start(&mut sim);
    sim.run_until(Instant::from_secs(1));

    let stp = server.stats().stp_violations
        + client.stats().stp_violations
        + [s_set, s_add, s_get, c_set, c_add, c_get]
            .iter()
            .map(dear_transactors::TransactorStats::stp_violations)
            .sum::<u64>();
    let printed_value = printed.lock().unwrap().unwrap_or(-1);
    DetCalcOutcome {
        printed: printed_value,
        stp_violations: stp,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dear_calculator_always_prints_three() {
        for seed in 0..30 {
            let outcome = run_det_trial(seed, Duration::from_millis(5));
            assert_eq!(outcome.printed, 3, "seed {seed}");
            assert_eq!(outcome.stp_violations, 0, "seed {seed}");
        }
    }

    #[test]
    fn understated_latency_bound_is_observable_not_wrong() {
        // With L far below the real latency, the three same-tag requests
        // can arrive after the server already processed that tag: the
        // late ones are rejected as STP violations. The printed value may
        // then be missing or stale — but the fault is *counted*, never a
        // silent wrong answer presented as correct.
        let mut violated = 0;
        for seed in 0..20 {
            let outcome = run_det_trial(seed, Duration::from_micros(50));
            if outcome.stp_violations > 0 {
                violated += 1;
                assert_ne!(
                    outcome.printed, 3,
                    "seed {seed}: a violated run must not pretend to be complete"
                );
            } else {
                assert_eq!(outcome.printed, 3, "seed {seed}");
            }
        }
        assert!(
            violated > 0,
            "expected at least one observable violation with a 50µs bound"
        );
    }
}
