//! The nondeterministic brake assistant — the APD design of Figure 4.
//!
//! Five SWCs across two platforms:
//!
//! ```text
//! Platform 1                    Platform 2
//! ┌──────────────┐   frame   ┌──────────────┐ frame ┌──────────────┐
//! │Video Provider│──────────▶│Video Adapter │──────▶│Preprocessing │─┐lane
//! └──────────────┘           └──────────────┘       └──────┬───────┘ │
//!                                                     frame│         ▼
//!                                                          │  ┌──────────────┐
//!                                                          └─▶│ComputerVision│
//!                                                             └──────┬───────┘
//!                                                             vehicles│
//!                                                                     ▼
//!                                                              ┌──────────┐
//!                                                              │   EBA    │──▶ brake
//!                                                              └──────────┘
//! ```
//!
//! "Event notifications are used to transfer data from one SWC to the
//! next and the corresponding event handler stores the data in a one-slot
//! input buffer. Each SWC sets up a periodic callback so that the OS
//! triggers the SWC logic every 50 ms. ... This introduces nondeterminism
//! as data could get overwritten before it is read by a downstream
//! component, causing entire frames to be dropped. Moreover, since the
//! Computer Vision component reads not one but two inputs, this can lead
//! to misalignment between the video frames and the lane information"
//! (paper §IV.A).
//!
//! [`run_nondet`] executes one seeded instance and reports the four error
//! types of Figure 5.

use crate::det::RedundancyParams;
use crate::logic::{detect_vehicles, eba_decide, preprocess, StageTimings};
use crate::types::{BrakeDecision, Frame, LaneBox, VehicleList};
use dear_ara::{EventBuffer, SoftwareComponent, SwcConfig};
use dear_sim::{LatencyModel, LinkConfig, NetworkHandle, Simulation};
use dear_someip::SdRegistry;
use dear_time::{Duration, Instant};
use std::cell::RefCell;
use std::rc::Rc;

/// Node ids of the five SWC processes (provider on platform 1, the rest
/// are processes on platform 2).
pub mod nodes {
    use dear_sim::NodeId;
    /// Video Provider (platform 1).
    pub const PROVIDER: NodeId = NodeId(1);
    /// Video Adapter (platform 2).
    pub const ADAPTER: NodeId = NodeId(2);
    /// Preprocessing (platform 2).
    pub const PREPROCESSING: NodeId = NodeId(3);
    /// Computer Vision (platform 2).
    pub const COMPUTER_VISION: NodeId = NodeId(4);
    /// EBA (platform 2).
    pub const EBA: NodeId = NodeId(5);
    /// The RTI, when the deterministic build runs under centralized
    /// coordination (lives on the coordination network).
    pub const RTI: NodeId = NodeId(6);
    /// The redundant (backup) Video Provider, in failover scenarios
    /// (platform 1, second board).
    pub const PROVIDER_BACKUP: NodeId = NodeId(7);
}

/// Service ids and event ids used along the pipeline.
pub mod services {
    /// Raw camera frames (provider → adapter, "proprietary protocol").
    pub const VIDEO: u16 = 0x0100;
    /// Adapted frames (adapter → preprocessing, and forwarded onwards).
    pub const ADAPTER: u16 = 0x0200;
    /// Preprocessing outputs (lane + forwarded frame → computer vision).
    pub const PREPROCESSING: u16 = 0x0300;
    /// Vehicle detections (computer vision → EBA).
    pub const COMPUTER_VISION: u16 = 0x0400;
    /// The single instance id used by every pipeline service.
    pub const INSTANCE: u16 = 1;
    /// The backup provider's instance id, in failover scenarios.
    pub const BACKUP_INSTANCE: u16 = 2;
    /// Eventgroup used by every pipeline service.
    pub const EVENTGROUP: u16 = 1;
    /// Primary event id (frames / lane / vehicles).
    pub const EVENT_MAIN: u16 = 0x8001;
    /// Secondary event id (forwarded frame from preprocessing).
    pub const EVENT_AUX: u16 = 0x8002;
}

/// Parameters of one experiment instance.
#[derive(Debug, Clone)]
pub struct NondetParams {
    /// Number of frames the provider sends.
    pub frames: u64,
    /// Nominal frame period and periodic-callback period (50 ms).
    pub period: Duration,
    /// Uniform jitter on the provider's period ("approximately every
    /// 50 ms").
    pub provider_jitter: Duration,
    /// Maximum relative clock drift between platform 1 (provider) and
    /// platform 2, in parts per million. Each instance samples a drift in
    /// `[-max, max]`; the provider's effective period is scaled by it.
    ///
    /// Drift makes the provider/callback phase sweep slowly through the
    /// critical race window, which is why real runs (the paper's
    /// Figure 5) almost never see exactly zero errors.
    pub provider_drift_ppm_max: i64,
    /// Standard deviation of the OS dispatch jitter on each periodic
    /// callback activation (gaussian, unbounded tails).
    ///
    /// This models the scheduler noise on the "OS triggers the SWC logic
    /// every 50 ms" path; its tails are what give even well-phased
    /// instances a small residual error probability.
    pub callback_jitter_std: Duration,
    /// Probability that a callback activation suffers a large scheduling
    /// delay spike (preemption under load); real OS timer dispatch is
    /// heavy-tailed, and these spikes are what keep even well-phased
    /// instances from reaching exactly zero errors over long runs.
    pub callback_spike_prob: f64,
    /// Maximum extra delay of a spike (uniform in `(0, max]`).
    pub callback_spike_max: Duration,
    /// Stage compute-time models.
    pub timings: StageTimings,
    /// Provider → adapter link (crosses the Ethernet switch).
    pub ethernet: LinkConfig,
    /// Links between processes on platform 2.
    pub loopback: LinkConfig,
    /// Run with a redundant Video Provider and kill the primary mid-run
    /// (stock-AP failover: the standby polls the stream with a periodic
    /// callback and takes over after two silent polls — so the handover
    /// instant, and which frames are lost or duplicated around it, is
    /// scheduling luck). Only `primary_dies_after` is honoured; the SD
    /// fields of [`RedundancyParams`] model the deterministic build's
    /// machinery, which the stock build lacks.
    pub redundancy: Option<RedundancyParams>,
}

impl Default for NondetParams {
    fn default() -> Self {
        NondetParams {
            frames: 1_000,
            period: Duration::from_millis(50),
            provider_jitter: Duration::from_micros(500),
            provider_drift_ppm_max: 150,
            callback_jitter_std: Duration::from_micros(1500),
            callback_spike_prob: 0.002,
            callback_spike_max: Duration::from_millis(20),
            timings: StageTimings::default(),
            ethernet: LinkConfig::with_latency(LatencyModel::normal(
                Duration::from_millis(1),
                Duration::from_micros(200),
                Duration::from_micros(100),
            )),
            loopback: LinkConfig::with_latency(LatencyModel::normal(
                Duration::from_micros(150),
                Duration::from_micros(50),
                Duration::from_micros(20),
            )),
            redundancy: None,
        }
    }
}

/// The outcome of one nondeterministic-build instance, with the four
/// error types of the paper's Figure 5.
#[derive(Debug, Clone, Default)]
pub struct NondetReport {
    /// Frames the provider sent.
    pub frames_sent: u64,
    /// Brake decisions that reached the output, in emission order.
    pub decisions: Vec<BrakeDecision>,
    /// Figure 5: "Dropped frames (Preprocessing)" — overwrites of the
    /// preprocessing input buffer.
    pub dropped_preprocessing: u64,
    /// Figure 5: "Dropped frames (Computer Vision)" — overwrites of the
    /// CV frame input buffer.
    pub dropped_cv: u64,
    /// Figure 5: "Input mismatches (Computer Vision)" — reads where frame
    /// and lane did not belong together.
    pub mismatches_cv: u64,
    /// Figure 5: "Dropped vehicles (EBA)" — overwrites of the EBA input
    /// buffer.
    pub dropped_eba: u64,
    /// Overwrites at the adapter input buffer (not part of Figure 5 but
    /// reported for completeness).
    pub dropped_adapter: u64,
    /// Decisions whose value disagrees with the reference logic (should
    /// stay zero: the pipeline drops or misaligns, it does not corrupt).
    pub wrong_decisions: u64,
    /// When the standby provider took over (`Some` only in redundancy
    /// scenarios where the takeover happened within the horizon). Unlike
    /// the deterministic build's failover tag, this instant is pure
    /// scheduling luck and varies across seeds.
    pub backup_takeover_at: Option<Instant>,
}

impl NondetReport {
    /// Total Figure 5 errors (the four plotted types).
    #[must_use]
    pub fn total_errors(&self) -> u64 {
        self.dropped_preprocessing + self.dropped_cv + self.mismatches_cv + self.dropped_eba
    }

    /// Error prevalence in percent of sent frames.
    #[must_use]
    pub fn prevalence_pct(&self) -> f64 {
        if self.frames_sent == 0 {
            0.0
        } else {
            self.total_errors() as f64 * 100.0 / self.frames_sent as f64
        }
    }

    /// Per-type prevalence `[preprocessing, cv, mismatch, eba]` in percent.
    #[must_use]
    pub fn prevalence_by_type_pct(&self) -> [f64; 4] {
        let f = if self.frames_sent == 0 {
            1.0
        } else {
            self.frames_sent as f64
        };
        [
            self.dropped_preprocessing as f64 * 100.0 / f,
            self.dropped_cv as f64 * 100.0 / f,
            self.mismatches_cv as f64 * 100.0 / f,
            self.dropped_eba as f64 * 100.0 / f,
        ]
    }

    /// FNV fingerprint of the decision sequence (for determinism checks).
    #[must_use]
    pub fn decision_fingerprint(&self) -> u64 {
        let mut hash = 0xCBF2_9CE4_8422_2325u64;
        for d in &self.decisions {
            for b in d.frame_id.to_le_bytes().iter().chain(&[u8::from(d.brake)]) {
                hash ^= u64::from(*b);
                hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
            }
        }
        hash
    }
}

/// Schedules a periodic callback anchored at `offset + k * period`, with
/// each activation displaced by gaussian OS dispatch jitter. The jitter is
/// non-cumulative (anchors stay on the nominal grid, as an OS periodic
/// timer does).
#[allow(clippy::too_many_arguments)]
fn schedule_periodic_jittered(
    sim: &mut Simulation,
    offset: Duration,
    period: Duration,
    jitter_std: Duration,
    spike_prob: f64,
    spike_max: Duration,
    rng: dear_sim::SimRng,
    callback: impl FnMut(&mut Simulation) + 'static,
) {
    struct State<F> {
        period: Duration,
        jitter_std: Duration,
        spike_prob: f64,
        spike_max: Duration,
        rng: dear_sim::SimRng,
        callback: F,
        k: u64,
        start: Instant,
    }
    fn tick<F: FnMut(&mut Simulation) + 'static>(sim: &mut Simulation, mut st: State<F>) {
        (st.callback)(sim);
        st.k += 1;
        let anchor = st.start + st.period * i64::try_from(st.k).expect("activation count");
        let mut jitter = if st.jitter_std.is_zero() {
            Duration::ZERO
        } else {
            let j = st.rng.gaussian() * st.jitter_std.as_nanos() as f64;
            Duration::from_nanos(j as i64).max(-(st.period / 2))
        };
        if st.spike_prob > 0.0 && st.spike_max > Duration::ZERO && st.rng.chance(st.spike_prob) {
            jitter += st.rng.uniform_duration(Duration::ZERO, st.spike_max);
        }
        let at = anchor
            .saturating_add(jitter)
            .max(sim.now() + Duration::from_nanos(1));
        sim.schedule_at(at, move |sim| tick(sim, st));
    }
    let start = sim.now() + offset;
    let st = State {
        period,
        jitter_std,
        spike_prob,
        spike_max,
        rng,
        callback,
        k: 0,
        start,
    };
    sim.schedule_at(start, move |sim| tick(sim, st));
}

/// The provider's frame loop: one frame approximately every `period`,
/// ids `start..total`.
fn send_frames(
    sim: &mut Simulation,
    skel: dear_ara::ServiceSkeleton,
    mut rng: dear_sim::SimRng,
    id: u64,
    total: u64,
    period: Duration,
    jitter: Duration,
) {
    if id >= total {
        return;
    }
    let frame = Frame::new(id, sim.now().as_nanos());
    skel.notify(
        sim,
        services::EVENTGROUP,
        services::EVENT_MAIN,
        frame.to_payload(),
    );
    let next = if jitter.is_zero() {
        period
    } else {
        period + rng.uniform_duration(-jitter, jitter)
    };
    sim.schedule_in(next, move |sim| {
        send_frames(sim, skel, rng, id + 1, total, period, jitter)
    });
}

/// Runs one seeded instance of the nondeterministic brake assistant.
///
/// Per-instance randomness (callback phase offsets, provider jitter,
/// dispatch jitter, compute times, network latencies) all derive from
/// `seed`; the same seed replays the identical run.
#[must_use]
pub fn run_nondet(seed: u64, params: &NondetParams) -> NondetReport {
    use services::{
        ADAPTER, COMPUTER_VISION, EVENTGROUP, EVENT_AUX, EVENT_MAIN, INSTANCE, PREPROCESSING, VIDEO,
    };

    let mut sim = Simulation::new(seed);
    let net = NetworkHandle::new(params.loopback.clone(), sim.fork_rng("net"));
    net.configure_link(nodes::PROVIDER, nodes::ADAPTER, params.ethernet.clone());
    let sd = SdRegistry::new();
    let offer_ttl = Duration::from_secs(1 << 40 >> 10); // effectively forever

    // --- SWCs -------------------------------------------------------------
    let provider = SoftwareComponent::launch(
        &sim,
        &net,
        &sd,
        SwcConfig::single_threaded("video-provider", nodes::PROVIDER, 0x10),
    );
    let adapter = SoftwareComponent::launch(
        &sim,
        &net,
        &sd,
        SwcConfig::multi_threaded("video-adapter", nodes::ADAPTER, 0x20),
    );
    let preprocessing = SoftwareComponent::launch(
        &sim,
        &net,
        &sd,
        SwcConfig::multi_threaded("preprocessing", nodes::PREPROCESSING, 0x30),
    );
    let cv = SoftwareComponent::launch(
        &sim,
        &net,
        &sd,
        SwcConfig::multi_threaded("computer-vision", nodes::COMPUTER_VISION, 0x40),
    );
    let eba = SoftwareComponent::launch(
        &sim,
        &net,
        &sd,
        SwcConfig::multi_threaded("eba", nodes::EBA, 0x50),
    );

    // Offers.
    let provider_skel = provider.skeleton(&sim, VIDEO, INSTANCE);
    provider_skel.offer(&mut sim, offer_ttl);
    let adapter_skel = adapter.skeleton(&sim, ADAPTER, INSTANCE);
    adapter_skel.offer(&mut sim, offer_ttl);
    let preproc_skel = preprocessing.skeleton(&sim, PREPROCESSING, INSTANCE);
    preproc_skel.offer(&mut sim, offer_ttl);
    let cv_skel = cv.skeleton(&sim, COMPUTER_VISION, INSTANCE);
    cv_skel.offer(&mut sim, offer_ttl);

    // Subscriptions into one-slot buffers.
    let adapter_buf: EventBuffer = adapter
        .proxy(VIDEO, INSTANCE)
        .subscribe_buffered(EVENTGROUP, EVENT_MAIN);
    let preproc_buf: EventBuffer = preprocessing
        .proxy(ADAPTER, INSTANCE)
        .subscribe_buffered(EVENTGROUP, EVENT_MAIN);
    let cv_lane_buf: EventBuffer = cv
        .proxy(PREPROCESSING, INSTANCE)
        .subscribe_buffered(EVENTGROUP, EVENT_MAIN);
    let cv_frame_buf: EventBuffer = cv
        .proxy(PREPROCESSING, INSTANCE)
        .subscribe_buffered(EVENTGROUP, EVENT_AUX);
    let eba_buf: EventBuffer = eba
        .proxy(COMPUTER_VISION, INSTANCE)
        .subscribe_buffered(EVENTGROUP, EVENT_MAIN);

    // --- Video Provider: a frame approximately every `period` -------------
    let frames_total = params.frames;
    // With redundancy, the primary silently crashes after its kill frame.
    let primary_frames = params.redundancy.map_or(frames_total, |r| {
        (r.primary_dies_after + 1).min(frames_total)
    });
    {
        let mut rng = sim.fork_rng("provider");
        let jitter = params.provider_jitter;
        // Relative clock drift between the two platforms scales the
        // provider's effective period for this instance.
        let period = if params.provider_drift_ppm_max > 0 {
            let max = params.provider_drift_ppm_max;
            let ppm = rng.range_u64(0, 2 * max as u64 + 1) as i64 - max;
            params.period + Duration::from_nanos(params.period.as_nanos() * ppm / 1_000_000)
        } else {
            params.period
        };
        let skel = provider_skel.clone();
        sim.schedule_at(Instant::EPOCH, move |sim| {
            send_frames(sim, skel, rng, 0, primary_frames, period, jitter)
        });
    }

    // --- Periodic SWC logic ------------------------------------------------
    // Phase offsets are the paper's culprit: "the error rate is strongly
    // influenced by the offset between the individual periodic callbacks
    // of the SWCs, which depends on when SWCs are started and is
    // difficult to control."
    let mut offset_rng = sim.fork_rng("offsets");
    let mut random_offset = || offset_rng.uniform_duration(Duration::ZERO, params.period);
    let period = params.period;

    // Video Adapter: republish the latest raw frame.
    {
        let buf = adapter_buf.clone();
        let skel = adapter_skel.clone();
        let timing = params.timings.adapter.clone();
        let rng = Rc::new(RefCell::new(sim.fork_rng("adapter-compute")));
        let offset = random_offset();
        let cb_rng = sim.fork_rng("adapter-callback");
        schedule_periodic_jittered(
            &mut sim,
            offset,
            period,
            params.callback_jitter_std,
            params.callback_spike_prob,
            params.callback_spike_max,
            cb_rng,
            move |sim| {
                if let Some(payload) = buf.take() {
                    let d = timing.sample(&mut rng.borrow_mut());
                    let skel = skel.clone();
                    sim.schedule_in(d, move |sim| {
                        skel.notify(sim, EVENTGROUP, EVENT_MAIN, payload);
                    });
                }
            },
        );
    }

    // Preprocessing: compute the lane box, publish lane + forwarded frame.
    {
        let buf = preproc_buf.clone();
        let skel = preproc_skel.clone();
        let timing = params.timings.preprocessing.clone();
        let rng = Rc::new(RefCell::new(sim.fork_rng("preproc-compute")));
        let offset = random_offset();
        let cb_rng = sim.fork_rng("preproc-callback");
        schedule_periodic_jittered(
            &mut sim,
            offset,
            period,
            params.callback_jitter_std,
            params.callback_spike_prob,
            params.callback_spike_max,
            cb_rng,
            move |sim| {
                if let Some(payload) = buf.take() {
                    let frame = Frame::from_payload(&payload).expect("frame payload");
                    let d = timing.sample(&mut rng.borrow_mut());
                    let skel = skel.clone();
                    sim.schedule_in(d, move |sim| {
                        let lane = preprocess(&frame);
                        skel.notify(sim, EVENTGROUP, EVENT_MAIN, lane.to_payload());
                        skel.notify(sim, EVENTGROUP, EVENT_AUX, frame.to_payload());
                    });
                }
            },
        );
    }

    // Computer Vision: join lane + frame, detect vehicles.
    let mismatches = Rc::new(RefCell::new(0u64));
    {
        let lane_buf = cv_lane_buf.clone();
        let frame_buf = cv_frame_buf.clone();
        let skel = cv_skel.clone();
        let timing = params.timings.computer_vision.clone();
        let rng = Rc::new(RefCell::new(sim.fork_rng("cv-compute")));
        let mismatches = mismatches.clone();
        let offset = random_offset();
        let cb_rng = sim.fork_rng("cv-callback");
        schedule_periodic_jittered(
            &mut sim,
            offset,
            period,
            params.callback_jitter_std,
            params.callback_spike_prob,
            params.callback_spike_max,
            cb_rng,
            move |sim| {
                let lane = lane_buf
                    .take()
                    .map(|p| LaneBox::from_payload(&p).expect("lane"));
                let frame = frame_buf
                    .take()
                    .map(|p| Frame::from_payload(&p).expect("frame"));
                match (lane, frame) {
                    (Some(lane), Some(frame)) if lane.frame_id == frame.id => {
                        let d = timing.sample(&mut rng.borrow_mut());
                        let skel = skel.clone();
                        sim.schedule_in(d, move |sim| {
                            let vehicles = detect_vehicles(&frame, &lane);
                            skel.notify(sim, EVENTGROUP, EVENT_MAIN, vehicles.to_payload());
                        });
                    }
                    (Some(_), Some(_)) | (Some(_), None) | (None, Some(_)) => {
                        // Misaligned inputs: either the pair disagrees or only
                        // one half arrived in time.
                        *mismatches.borrow_mut() += 1;
                    }
                    (None, None) => {} // silently wait for the next trigger
                }
            },
        );
    }

    // EBA: decide on the latest vehicle list.
    let decisions = Rc::new(RefCell::new(Vec::new()));
    let wrong = Rc::new(RefCell::new(0u64));
    {
        let buf = eba_buf.clone();
        let timing = params.timings.eba.clone();
        let rng = Rc::new(RefCell::new(sim.fork_rng("eba-compute")));
        let decisions = decisions.clone();
        let wrong = wrong.clone();
        let offset = random_offset();
        let cb_rng = sim.fork_rng("eba-callback");
        schedule_periodic_jittered(
            &mut sim,
            offset,
            period,
            params.callback_jitter_std,
            params.callback_spike_prob,
            params.callback_spike_max,
            cb_rng,
            move |sim| {
                if let Some(payload) = buf.take() {
                    let vehicles = VehicleList::from_payload(&payload).expect("vehicles");
                    let d = timing.sample(&mut rng.borrow_mut());
                    let decisions = decisions.clone();
                    let wrong = wrong.clone();
                    sim.schedule_in(d, move |_sim| {
                        let brake = eba_decide(&vehicles);
                        if brake != crate::logic::reference_decision(vehicles.frame_id) {
                            *wrong.borrow_mut() += 1;
                        }
                        decisions.borrow_mut().push(BrakeDecision {
                            frame_id: vehicles.frame_id,
                            brake,
                        });
                    });
                }
            },
        );
    }

    // --- Redundant Video Provider (stock-AP failover) ----------------------
    // The standby polls the primary's stream through its own one-slot
    // buffer from a periodic callback, like every other stock SWC. Two
    // consecutive empty polls mean "primary dead": it offers the service
    // and resumes the stream after the last frame it happened to see.
    // Where the handover lands — and which frames are dropped or
    // duplicated around it — depends on the callback phase and jitter,
    // i.e. on scheduling luck.
    let backup_takeover: Rc<RefCell<Option<Instant>>> = Rc::new(RefCell::new(None));
    if params.redundancy.is_some() {
        let backup = SoftwareComponent::launch(
            &sim,
            &net,
            &sd,
            SwcConfig::single_threaded("video-provider-backup", nodes::PROVIDER_BACKUP, 0x11),
        );
        let backup_skel = backup.skeleton(&sim, VIDEO, INSTANCE);
        let watch_buf: EventBuffer = backup
            .proxy(VIDEO, INSTANCE)
            .subscribe_buffered(EVENTGROUP, EVENT_MAIN);
        let takeover = backup_takeover.clone();
        let rng_send = sim.fork_rng("provider-backup");
        let cb_rng = sim.fork_rng("backup-watchdog");
        let jitter = params.provider_jitter;
        let send_period = params.period;
        let mut last_seen: Option<u64> = None;
        let mut silent = 0u32;
        let mut active = false;
        let offset = random_offset();
        schedule_periodic_jittered(
            &mut sim,
            offset,
            period,
            params.callback_jitter_std,
            params.callback_spike_prob,
            params.callback_spike_max,
            cb_rng,
            move |sim| {
                if active {
                    return;
                }
                if let Some(payload) = watch_buf.take() {
                    let frame = Frame::from_payload(&payload).expect("frame payload");
                    last_seen = Some(last_seen.map_or(frame.id, |s| s.max(frame.id)));
                    silent = 0;
                } else if last_seen.is_some() {
                    silent += 1;
                    if silent >= 2 {
                        active = true;
                        *takeover.borrow_mut() = Some(sim.now());
                        backup_skel.offer(sim, Duration::from_secs(1 << 30));
                        let resume = last_seen.map_or(0, |s| s + 1);
                        let skel = backup_skel.clone();
                        let rng = rng_send.clone();
                        send_frames(sim, skel, rng, resume, frames_total, send_period, jitter);
                    }
                }
            },
        );
    }

    // Run long enough for the last frame to drain through the pipeline.
    let horizon = Instant::EPOCH
        + params.period * i64::try_from(params.frames).expect("frame count")
        + Duration::from_secs(1);
    sim.run_until(horizon);

    let decisions_out = std::mem::take(&mut *decisions.borrow_mut());
    let mismatches_cv = *mismatches.borrow();
    let wrong_decisions = *wrong.borrow();
    let backup_takeover_at = *backup_takeover.borrow();
    NondetReport {
        frames_sent: params.frames,
        decisions: decisions_out,
        dropped_preprocessing: preproc_buf.stats().overwrites,
        dropped_cv: cv_frame_buf.stats().overwrites,
        mismatches_cv,
        dropped_eba: eba_buf.stats().overwrites,
        dropped_adapter: adapter_buf.stats().overwrites,
        wrong_decisions,
        backup_takeover_at,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_params() -> NondetParams {
        NondetParams {
            frames: 300,
            ..NondetParams::default()
        }
    }

    #[test]
    fn pipeline_produces_decisions() {
        let report = run_nondet(1, &small_params());
        assert!(
            report.decisions.len() > 100,
            "most frames should produce decisions, got {}",
            report.decisions.len()
        );
        assert_eq!(report.wrong_decisions, 0, "content is never corrupted");
    }

    #[test]
    fn same_seed_same_report() {
        let a = run_nondet(7, &small_params());
        let b = run_nondet(7, &small_params());
        assert_eq!(a.decision_fingerprint(), b.decision_fingerprint());
        assert_eq!(a.total_errors(), b.total_errors());
    }

    #[test]
    fn error_rate_varies_across_seeds() {
        let params = small_params();
        let rates: Vec<f64> = (0..12)
            .map(|s| run_nondet(s, &params).prevalence_pct())
            .collect();
        let min = rates.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = rates.iter().cloned().fold(0.0, f64::max);
        assert!(
            max > min,
            "error prevalence should vary between instances: {rates:?}"
        );
        assert!(
            max > 0.0,
            "at least one instance should exhibit errors: {rates:?}"
        );
    }

    #[test]
    fn stock_failover_diverges_across_seeds() {
        // The counterpart of the deterministic build's failover claims:
        // under the identical kill scenario, the stock build's handover
        // instant and decision sequence are scheduling luck.
        let params = NondetParams {
            redundancy: Some(RedundancyParams {
                primary_dies_after: 99,
                ..RedundancyParams::default()
            }),
            ..small_params()
        };
        let runs: Vec<(u64, Option<Instant>)> = (0..8)
            .map(|s| {
                let r = run_nondet(s, &params);
                (r.decision_fingerprint(), r.backup_takeover_at)
            })
            .collect();
        for (_, takeover) in &runs {
            assert!(takeover.is_some(), "the standby must take over");
        }
        let distinct_fp: std::collections::HashSet<u64> = runs.iter().map(|&(f, _)| f).collect();
        assert!(
            distinct_fp.len() > 1,
            "stock failover should diverge: {runs:?}"
        );
        let distinct_at: std::collections::HashSet<_> =
            runs.iter().map(|&(_, t)| t.unwrap()).collect();
        assert!(
            distinct_at.len() > 1,
            "takeover instants should vary: {runs:?}"
        );
        // Same seed, same run — the simulation itself stays replayable.
        assert_eq!(
            run_nondet(3, &params).decision_fingerprint(),
            run_nondet(3, &params).decision_fingerprint()
        );
    }

    #[test]
    fn decisions_vary_across_seeds() {
        // The nondeterminism is application-visible: whenever instances
        // differ in their error counts, their decision sequences must
        // differ too (dropped frames leave gaps at different places).
        let params = small_params();
        let runs: Vec<(u64, u64)> = (0..12)
            .map(|s| {
                let r = run_nondet(s, &params);
                (r.decision_fingerprint(), r.total_errors())
            })
            .collect();
        let distinct_errors: std::collections::HashSet<u64> =
            runs.iter().map(|&(_, e)| e).collect();
        assert!(
            distinct_errors.len() > 1,
            "expected varying error counts across seeds: {runs:?}"
        );
        let distinct_fp: std::collections::HashSet<u64> = runs.iter().map(|&(fp, _)| fp).collect();
        assert!(
            distinct_fp.len() > 1,
            "all seeds produced identical decisions: {runs:?}"
        );
    }
}
