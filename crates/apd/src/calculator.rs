//! The paper's Figure 1 client/server application.
//!
//! ```text
//! int main() {
//!     s = ServiceProxy();
//!     s.set_value(1);
//!     s.add(2);
//!     result = s.get_value();
//!     std::cout << result.get();
//! }
//! ```
//!
//! The server implements `set_value` and `add` non-blocking, and "by
//! default, the runtime environment maps each invocation to a different
//! thread, meaning the order in which the calls are handled is determined
//! purely by the thread scheduler. As a result, no order is enforced on
//! the handling of calls to set_value, add, and get_value, leading to
//! nondeterministic results" — the printed value is one of {0, 1, 2, 3}.
//!
//! [`run_trial`] executes one instance under a given seed;
//! [`distribution`] reproduces the Figure 1 histogram.

use dear_ara::{SoftwareComponent, SwcConfig};
use dear_sim::{LatencyModel, LinkConfig, NetworkHandle, NodeId, Simulation};
use dear_someip::{PayloadReader, PayloadWriter, SdRegistry};
use dear_time::{Duration, Instant};
use std::cell::RefCell;
use std::rc::Rc;

/// Service id of the calculator.
pub const CALC_SERVICE: u16 = 0x0C01;
/// Instance id used by the demo.
pub const CALC_INSTANCE: u16 = 1;
/// `set_value(v)` method id.
pub const METHOD_SET: u16 = 1;
/// `add(v)` method id.
pub const METHOD_ADD: u16 = 2;
/// `get_value()` method id.
pub const METHOD_GET: u16 = 3;

/// Configuration of one Figure 1 trial.
#[derive(Debug, Clone)]
pub struct CalculatorConfig {
    /// Server worker threads (paper default: one thread per invocation).
    pub server_workers: usize,
    /// Server dispatch jitter (the thread scheduler's whim).
    pub dispatch_jitter: LatencyModel,
    /// Method execution time on the server.
    pub exec_time: LatencyModel,
    /// Client↔server link.
    pub link: LinkConfig,
}

impl Default for CalculatorConfig {
    fn default() -> Self {
        CalculatorConfig {
            server_workers: 4,
            dispatch_jitter: LatencyModel::uniform(Duration::ZERO, Duration::from_micros(500)),
            exec_time: LatencyModel::constant(Duration::from_micros(50)),
            link: LinkConfig::with_latency(LatencyModel::uniform(
                Duration::from_micros(80),
                Duration::from_micros(120),
            )),
        }
    }
}

impl CalculatorConfig {
    /// The "single thread" workaround the paper mentions: serialized
    /// handling restores a deterministic result (always 3).
    #[must_use]
    pub fn single_threaded() -> Self {
        CalculatorConfig {
            server_workers: 1,
            dispatch_jitter: LatencyModel::constant(Duration::ZERO),
            ..Default::default()
        }
    }
}

fn encode_i64(v: i64) -> Vec<u8> {
    let mut w = PayloadWriter::new();
    w.write_i64(v);
    w.into_bytes()
}

fn decode_i64(bytes: &[u8]) -> i64 {
    let mut r = PayloadReader::new(bytes);
    r.read_i64().expect("calculator payload")
}

/// Runs one trial; returns the value the client "prints".
#[must_use]
pub fn run_trial(seed: u64, config: &CalculatorConfig) -> i64 {
    let mut sim = Simulation::new(seed);
    let net = NetworkHandle::new(config.link.clone(), sim.fork_rng("net"));
    let sd = SdRegistry::new();

    // Server SWC with the AP-default multi-threaded dispatch.
    let server = SoftwareComponent::launch(
        &sim,
        &net,
        &sd,
        SwcConfig {
            name: "calc-server".into(),
            node: NodeId(1),
            client_id: 0x10,
            workers: config.server_workers,
            dispatch_jitter: config.dispatch_jitter.clone(),
        },
    );
    let skeleton = server.skeleton(&sim, CALC_SERVICE, CALC_INSTANCE);
    let value = Rc::new(RefCell::new(0i64));
    {
        let v = value.clone();
        skeleton.provide_method(
            METHOD_SET,
            config.exec_time.clone(),
            move |_sim, payload| {
                *v.borrow_mut() = decode_i64(&payload);
                encode_i64(*v.borrow())
            },
        );
        let v = value.clone();
        skeleton.provide_method(
            METHOD_ADD,
            config.exec_time.clone(),
            move |_sim, payload| {
                let mut v = v.borrow_mut();
                *v += decode_i64(&payload);
                encode_i64(*v)
            },
        );
        let v = value.clone();
        skeleton.provide_method(
            METHOD_GET,
            config.exec_time.clone(),
            move |_sim, _payload| encode_i64(*v.borrow()),
        );
    }
    skeleton.offer(&mut sim, Duration::from_secs(3600));

    // Client SWC issuing the three calls without awaiting the futures.
    let client = SoftwareComponent::launch(
        &sim,
        &net,
        &sd,
        SwcConfig::single_threaded("calc-client", NodeId(2), 0x20),
    );
    let proxy = client.proxy(CALC_SERVICE, CALC_INSTANCE);
    let printed = Rc::new(RefCell::new(None));
    {
        let printed = printed.clone();
        sim.schedule_at(Instant::from_millis(1), move |sim| {
            let _ = proxy.call(sim, METHOD_SET, encode_i64(1));
            let _ = proxy.call(sim, METHOD_ADD, encode_i64(2));
            let sink = printed.clone();
            proxy
                .call(sim, METHOD_GET, Vec::new())
                .then(sim, move |_sim, result| {
                    *sink.borrow_mut() = Some(decode_i64(&result.expect("get_value result")));
                });
        });
    }

    sim.run_to_completion();
    let result = printed.borrow().expect("client printed a value");
    result
}

/// Runs `trials` seeded instances and returns the histogram over the
/// printed values {0, 1, 2, 3} — the Figure 1 distribution.
#[must_use]
pub fn distribution(base_seed: u64, trials: u64, config: &CalculatorConfig) -> [u64; 4] {
    let mut histogram = [0u64; 4];
    for t in 0..trials {
        let printed = run_trial(base_seed.wrapping_add(t), config);
        let idx = usize::try_from(printed).expect("printed value in 0..=3");
        assert!(idx < 4, "printed value {printed} outside {{0,1,2,3}}");
        histogram[idx] += 1;
    }
    histogram
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn printed_value_is_always_in_range() {
        let cfg = CalculatorConfig::default();
        for seed in 0..50 {
            let v = run_trial(seed, &cfg);
            assert!((0..=3).contains(&v), "seed {seed} printed {v}");
        }
    }

    #[test]
    fn multi_threaded_server_is_nondeterministic_across_seeds() {
        let hist = distribution(0, 200, &CalculatorConfig::default());
        let distinct = hist.iter().filter(|&&c| c > 0).count();
        assert!(
            distinct >= 3,
            "expected at least 3 distinct outcomes, histogram {hist:?}"
        );
    }

    #[test]
    fn trial_is_reproducible_per_seed() {
        let cfg = CalculatorConfig::default();
        for seed in [3, 17, 99] {
            assert_eq!(run_trial(seed, &cfg), run_trial(seed, &cfg));
        }
    }

    #[test]
    fn single_threaded_server_always_prints_three() {
        let cfg = CalculatorConfig::single_threaded();
        for seed in 0..30 {
            assert_eq!(run_trial(seed, &cfg), 3, "seed {seed}");
        }
    }
}
