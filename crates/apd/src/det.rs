//! The deterministic brake assistant — the DEAR port of §IV.B.
//!
//! Topology and logic are identical to the nondeterministic build
//! ([`crate::nondet`]); only the coordination changes:
//!
//! * each pipeline SWC becomes a reactor program in its own process
//!   (a [`FederatedPlatform`]), bound to the same SOME/IP service
//!   interfaces through DEAR transactors;
//! * the Video Adapter is "a sensor that inserts frames into the reactor
//!   network with a tag equal to the physical time of message reception"
//!   (the untagged camera frames use [`UntaggedPolicy::PhysicalTime`]);
//! * every inter-SWC message carries a tag, and receivers release it
//!   PTIDES-style at `t + D + L + E`;
//! * Computer Vision "expects to receive two events with the same tag at
//!   both inputs. If only one input is received, this is considered an
//!   error";
//! * deadlines are the paper's: 5 ms (adapter), 25 ms (preprocessing),
//!   25 ms (computer vision), 5 ms (EBA); maximum communication latency
//!   L = 5 ms; clock error E = 0 (single platform).
//!
//! [`UntaggedPolicy::PhysicalTime`]: dear_transactors::UntaggedPolicy::PhysicalTime

use crate::logic::{detect_vehicles, eba_decide, StageTimings};
use crate::nondet::{nodes, services};
use crate::types::{BrakeDecision, Frame, LaneBox, VehicleList};
use dear_core::{Port, ProgramBuilder, Reaction, ReactionCtx, ReactionId, Reactor, Runtime};
use dear_federation::{CoordinatedPlatform, EventLog, PlatformRecovery, Rti};
use dear_sim::{FaultPlan, LinkConfig, NetworkHandle, SimRng, Simulation, VirtualClock};
use dear_someip::{Binding, FrameBuf, SdRegistry, ServiceInstance};
use dear_time::{Duration, Instant};
use dear_transactors::{
    ClientEventTransactor, Coordination, DearConfig, EventSpec, FailoverEventSpec,
    FederatedPlatform, Outbox, PlatformDriver, ServerEventTransactor, TransactorStats,
};
use std::cell::{Cell, RefCell};
use std::rc::Rc;
use std::sync::{Arc, Mutex};

/// Per-stage sender deadlines (the paper's §IV.B values by default).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StageDeadlines {
    /// Video Adapter forwarding deadline.
    pub adapter: Duration,
    /// Preprocessing deadline.
    pub preprocessing: Duration,
    /// Computer Vision deadline.
    pub computer_vision: Duration,
    /// EBA reaction deadline.
    pub eba: Duration,
}

impl Default for StageDeadlines {
    fn default() -> Self {
        StageDeadlines {
            adapter: Duration::from_millis(5),
            preprocessing: Duration::from_millis(25),
            computer_vision: Duration::from_millis(25),
            eba: Duration::from_millis(5),
        }
    }
}

/// How a redundant-provider failover scenario kills its primary.
///
/// The Video Provider runs twice: the primary on
/// [`nodes::PROVIDER`] offers `(VIDEO, INSTANCE)` at priority 0, a warm
/// standby on [`nodes::PROVIDER_BACKUP`] offers
/// `(VIDEO, BACKUP_INSTANCE)` at priority 1 and replicates the primary's
/// frame stream by subscribing to it. The primary crashes right after
/// sending frame [`primary_dies_after`](Self::primary_dies_after); the
/// standby resumes at the next frame id, and the adapter's
/// [`FailoverBinding`] re-binds to it — via StopOffer (graceful), TTL
/// lapse (crash), or heartbeat silence, whichever fires first.
///
/// [`nodes::PROVIDER`]: crate::nondet::nodes::PROVIDER
/// [`nodes::PROVIDER_BACKUP`]: crate::nondet::nodes::PROVIDER_BACKUP
/// [`FailoverBinding`]: dear_transactors::FailoverBinding
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RedundancyParams {
    /// The primary dies immediately after sending this frame id.
    pub primary_dies_after: u64,
    /// `true`: the dying primary sends a StopOffer (graceful shutdown,
    /// failover at the StopOffer tag). `false`: it goes silent and its
    /// offer lapses (failover at the TTL expiry tag, or earlier via the
    /// heartbeat watchdog).
    pub graceful: bool,
    /// Offer TTL — the SOME/IP-SD heartbeat deadline.
    pub offer_ttl: Duration,
    /// Offer renewal period (must be below `offer_ttl`, or healthy
    /// providers expire between renewals).
    pub reoffer_period: Duration,
    /// Event-silence watchdog on the adapter's failover binding and the
    /// standby's replication listener; `None` relies on SD alone. Must
    /// exceed one frame period plus jitter and `L`, or a healthy primary
    /// is suspected spuriously.
    pub heartbeat_timeout: Option<Duration>,
}

impl Default for RedundancyParams {
    /// Crash (non-graceful) of the primary after frame 249, 400 ms TTL
    /// renewed every 150 ms, no heartbeat watchdog.
    fn default() -> Self {
        RedundancyParams {
            primary_dies_after: 249,
            graceful: false,
            offer_ttl: Duration::from_millis(400),
            reoffer_period: Duration::from_millis(150),
            heartbeat_timeout: None,
        }
    }
}

/// What one failover scenario observed (all tags, so byte-comparable
/// across replays).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FailoverReport {
    /// Tag of the primary's last frame (its death instant).
    pub primary_died_at: Instant,
    /// Tag at which the adapter re-bound to the backup.
    pub rebound_at: Option<Instant>,
    /// Adapter tag of the first frame received from the backup.
    pub first_backup_frame_at: Option<Instant>,
    /// Primary death → first backup frame at the adapter (the failover
    /// latency the `failover_latency` bench measures).
    pub failover_latency: Option<Duration>,
    /// Re-bindings performed by the adapter's failover binding.
    pub failovers: u64,
}

/// How a crash-recovery scenario kills and restarts a pipeline stage.
///
/// The Computer Vision federate runs with a durable event log attached
/// ([`dear_federation::EventLog`]): every started tag, granted bound and
/// injected input is appended before it takes effect, with periodic
/// snapshot records. Mid-run the CV node is killed
/// ([`dear_sim::FaultPlan::crash_node`]); while it is down, inbound
/// frames and grants keep landing in the log. After
/// [`dead_for`](Self::dead_for) the recovery driver rebuilds the
/// identical reactor program (action and reaction ids are structural),
/// replays the log — suppressing outbound messages the previous
/// incarnation already drained, re-sending the ones it never did — and
/// rejoins the RTI with a `Rejoin` frame. Because grants only ever
/// *delay* processing, the post-rejoin decision sequence is
/// byte-identical to a never-crashed run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryParams {
    /// The CV federate is killed a quarter frame period after the
    /// nominal send time of this frame id (mid-cycle, with pipeline
    /// traffic in flight).
    pub crash_after_frame: u64,
    /// How long the node stays dead before the recovery driver restarts
    /// it. Must stay well inside the CV deadline plus `L` (25 + 5 ms by
    /// default), or catch-up resends arrive after their release tags
    /// and trip the safe-to-process check downstream.
    pub dead_for: Duration,
    /// Snapshot cadence of the durable log (processed tags between
    /// snapshot records).
    pub snapshot_every: u64,
}

impl Default for RecoveryParams {
    /// Kill after frame 250 (mirroring [`RedundancyParams`]'s mid-run
    /// primary death), 10 ms outage, snapshot every 32 tags.
    fn default() -> Self {
        RecoveryParams {
            crash_after_frame: 250,
            dead_for: Duration::from_millis(10),
            snapshot_every: 32,
        }
    }
}

/// What one crash-recovery scenario observed (tags and counters, so
/// byte-comparable across replays).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RecoveryReport {
    /// True time at which the CV federate was killed.
    pub crashed_at: Instant,
    /// True time at which replay completed and the `Rejoin` frame went
    /// out.
    pub rejoined_at: Instant,
    /// Outage duration (`rejoined_at - crashed_at`) — the replay/rejoin
    /// latency the `recovery_latency` bench measures.
    pub outage: Duration,
    /// Logged tags re-processed from the durable log.
    pub replayed_tags: u64,
    /// Logged input payloads re-scheduled from the durable log.
    pub replayed_inputs: u64,
    /// Outbound messages swallowed during replay (already on the wire
    /// before the crash).
    pub suppressed_sends: u64,
    /// Outbound messages the dead incarnation produced but never
    /// drained, re-sent after replay.
    pub resent_sends: u64,
    /// Replay steps disagreeing with the log (must be zero).
    pub replay_mismatches: u64,
    /// Incarnation number carried by the `Rejoin` frame.
    pub incarnation: u32,
}

/// Parameters of one deterministic-build instance.
#[derive(Debug, Clone)]
pub struct DetParams {
    /// Number of frames the provider sends.
    pub frames: u64,
    /// Frame period (50 ms).
    pub period: Duration,
    /// Provider period jitter.
    pub provider_jitter: Duration,
    /// Stage compute-time models.
    pub timings: StageTimings,
    /// Stage deadlines (paper: 5/25/25/5 ms).
    pub deadlines: StageDeadlines,
    /// Assumed maximum communication latency `L` (paper: 5 ms).
    pub latency_bound: Duration,
    /// Assumed maximum clock error `E` (paper: 0, same platform).
    pub clock_error: Duration,
    /// Provider → adapter link.
    pub ethernet: LinkConfig,
    /// Links between processes on platform 2.
    pub loopback: LinkConfig,
    /// Coordination strategy (the pipeline logic is identical under
    /// both; see `tests/federation_equivalence.rs`).
    pub coordination: Coordination,
    /// Link model of the dedicated coordination network (RTI traffic
    /// only, so control messages never perturb data-plane latencies).
    /// Must deliver in order (the default; see [`Rti::new`]).
    pub coord_link: LinkConfig,
    /// Enable the RTI's control-plane diet (DNET suppression, grant-ahead
    /// windows, periodic fast path) under centralized coordination. Off
    /// by default; ignored under decentralized coordination. Turning it
    /// on must not change any observable trace — only the control-frame
    /// counters in [`DetReport::coordination`].
    pub control_diet: bool,
    /// Record per-stage runtime event traces and report their
    /// fingerprints in [`DetReport::stage_traces`]. Off by default: the
    /// figure benches call `run_det` in measured loops and tracing costs
    /// O(events) time and memory.
    pub record_traces: bool,
    /// Run the pipeline with a redundant Video Provider and kill the
    /// primary mid-run. `None` (the default) is the plain single-provider
    /// scenario, bit-identical to the pre-failover builds.
    pub redundancy: Option<RedundancyParams>,
    /// Attach a durable event log to the Computer Vision federate and
    /// kill + restart it mid-run ([`RecoveryParams`]). `None` (the
    /// default) is the plain scenario. Requires
    /// [`Coordination::Centralized`] — crash-recovery is a property of
    /// the coordinated driver.
    pub recovery: Option<RecoveryParams>,
    /// Enable the full telemetry spine (metrics + spans) for the run and
    /// report the final snapshot in [`DetReport::metrics_snapshot`]. Off
    /// by default for the same reason as [`DetParams::record_traces`];
    /// turning it on must not change any observable behaviour — the
    /// `observability` integration test holds fingerprints to that.
    pub observability: bool,
}

impl Default for DetParams {
    fn default() -> Self {
        let nd = crate::nondet::NondetParams::default();
        DetParams {
            frames: nd.frames,
            period: nd.period,
            provider_jitter: nd.provider_jitter,
            timings: nd.timings,
            deadlines: StageDeadlines::default(),
            latency_bound: Duration::from_millis(5),
            clock_error: Duration::ZERO,
            ethernet: nd.ethernet,
            loopback: nd.loopback,
            coordination: Coordination::Decentralized,
            coord_link: LinkConfig::ideal(Duration::from_micros(10)),
            control_diet: false,
            record_traces: false,
            redundancy: None,
            recovery: None,
            observability: false,
        }
    }
}

/// The outcome of one deterministic-build instance.
#[derive(Debug, Clone, Default)]
pub struct DetReport {
    /// Frames the provider sent.
    pub frames_sent: u64,
    /// Brake decisions in emission order.
    pub decisions: Vec<BrakeDecision>,
    /// Logical end-to-end latency per decision (EBA tag − adapter tag).
    pub end_to_end: Vec<Duration>,
    /// CV tag-alignment errors (must be zero).
    pub mismatches_cv: u64,
    /// Safe-to-process violations (must be zero when bounds hold).
    pub stp_violations: u64,
    /// Deadline misses across all platforms.
    pub deadline_misses: u64,
    /// Untagged messages dropped on strict paths (must be zero).
    pub untagged_dropped: u64,
    /// Decisions disagreeing with the reference logic (must be zero).
    pub wrong_decisions: u64,
    /// Per-stage runtime trace fingerprints, in pipeline order (empty
    /// unless [`DetParams::record_traces`] is set). Two runs are
    /// observably identical iff these match.
    pub stage_traces: Vec<(String, u64)>,
    /// Coordination-layer counters (all zero under decentralized
    /// coordination).
    pub coordination: CoordReport,
    /// Failover observations (`Some` iff [`DetParams::redundancy`] was
    /// set).
    pub failover: Option<FailoverReport>,
    /// Crash-recovery observations (`Some` iff [`DetParams::recovery`]
    /// was set).
    pub recovery: Option<RecoveryReport>,
    /// The run's deterministic metrics snapshot (empty unless
    /// [`DetParams::observability`] was set).
    pub metrics_snapshot: String,
}

/// Aggregated coordination-message counters of one run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CoordReport {
    /// NET reports sent by all stages.
    pub nets_sent: u64,
    /// LTC reports sent by all stages.
    pub ltcs_sent: u64,
    /// Grants received by all stages.
    pub grants_received: u64,
    /// Provisional (PTAG) grants among them.
    pub ptags_received: u64,
    /// Tags processed beyond a granted bound (must stay zero).
    pub bound_breaches: u64,
    /// Total time stages spent blocked waiting for grants.
    pub grant_wait: Duration,
    /// Reports suppressed before hitting the wire (control diet only:
    /// same-head NET dedup plus DNET sink suppression).
    pub nets_suppressed: u64,
    /// Windowed TAG grants received (control diet only).
    pub windowed_grants: u64,
    /// Whether every stage's greatest processed tag stayed strictly
    /// below its final granted bound (vacuously true when no bounds are
    /// in play).
    pub within_bound: bool,
}

impl DetReport {
    /// FNV fingerprint of the decision sequence.
    #[must_use]
    pub fn decision_fingerprint(&self) -> u64 {
        let mut hash = 0xCBF2_9CE4_8422_2325u64;
        for d in &self.decisions {
            for b in d.frame_id.to_le_bytes().iter().chain(&[u8::from(d.brake)]) {
                hash ^= u64::from(*b);
                hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
            }
        }
        hash
    }
}

struct Stage<D> {
    platform: D,
    stats: Vec<TransactorStats>,
}

/// Video Adapter logic: "a sensor that inserts frames into the reactor
/// network with a tag equal to the physical time of message reception" —
/// each forwarded frame is stamped with the reception tag.
#[derive(Reactor)]
struct AdapterLogic {
    #[output]
    frame: Port<FrameBuf>,
    #[external]
    camera: Port<FrameBuf>,
    #[reaction(triggers(camera), effects(frame))]
    adapt: Reaction,
}

impl AdapterLogic {
    fn adapt(_: &mut (), this: &Self, ctx: &mut ReactionCtx<'_>) {
        let mut frame =
            Frame::from_payload(ctx.get(this.camera).unwrap()).expect("camera frame payload");
        // The sensor stamp: the tag equals the physical reception time
        // of the frame.
        frame.adapter_nanos = ctx.tag().time.as_nanos();
        ctx.set(this.frame, frame.to_payload());
    }
}

/// Preprocessing logic: lane detection plus a same-tag forward of the
/// raw frame for Computer Vision's alignment check.
#[derive(Reactor)]
struct PreprocessingLogic {
    #[output]
    lane: Port<FrameBuf>,
    #[output]
    frame: Port<FrameBuf>,
    #[external]
    frames: Port<FrameBuf>,
    #[reaction(triggers(frames), effects(lane, frame))]
    preprocess: Reaction,
}

impl PreprocessingLogic {
    fn preprocess(_: &mut (), this: &Self, ctx: &mut ReactionCtx<'_>) {
        let frame = Frame::from_payload(ctx.get(this.frames).unwrap()).expect("frame payload");
        let lane = crate::logic::preprocess(&frame);
        ctx.set(this.lane, lane.to_payload());
        ctx.set(this.frame, frame.to_payload());
    }
}

/// Computer Vision logic: "expects to receive two events with the same
/// tag at both inputs. If only one input is received, this is considered
/// an error" — the state counts those tag-alignment errors.
#[derive(Reactor)]
#[reactor(state = Arc<Mutex<u64>>)]
struct ComputerVisionLogic {
    #[output]
    vehicles: Port<FrameBuf>,
    #[external]
    lane: Port<FrameBuf>,
    #[external]
    frame: Port<FrameBuf>,
    #[reaction(triggers(lane, frame), effects(vehicles))]
    detect: Reaction,
}

impl ComputerVisionLogic {
    fn detect(mismatches: &mut Arc<Mutex<u64>>, this: &Self, ctx: &mut ReactionCtx<'_>) {
        let lane = ctx
            .get(this.lane)
            .map(|p| LaneBox::from_payload(p).expect("lane payload"));
        let frame = ctx
            .get(this.frame)
            .map(|p| Frame::from_payload(p).expect("frame payload"));
        match (lane, frame) {
            (Some(lane), Some(frame)) if lane.frame_id == frame.id => {
                let vehicles = detect_vehicles(&frame, &lane);
                ctx.set(this.vehicles, vehicles.to_payload());
            }
            // "If only one input is received, this is considered an
            // error."
            _ => *mismatches.lock().expect("mismatch counter") += 1,
        }
    }
}

/// Decisions collected from the EBA stage: `(decision, eba_tag_nanos,
/// adapter_tag_nanos)` in emission order.
type DecisionSink = Arc<Mutex<Vec<(BrakeDecision, u64, u64)>>>;

/// EBA logic: brake decisions under the paper's 5 ms reaction deadline.
/// The deadline is a run parameter, so it arrives as an `#[external]`
/// value rather than a literal in the attribute.
#[derive(Reactor)]
#[reactor(state = DecisionSink)]
struct EbaLogic {
    #[external]
    vehicles: Port<FrameBuf>,
    #[external]
    deadline: Duration,
    #[reaction(triggers(vehicles), deadline = this.deadline, on_deadline = decide_late)]
    decide: Reaction,
}

impl EbaLogic {
    fn decide(sink: &mut DecisionSink, this: &Self, ctx: &mut ReactionCtx<'_>) {
        let vehicles =
            VehicleList::from_payload(ctx.get(this.vehicles).unwrap()).expect("vehicles payload");
        let brake = eba_decide(&vehicles);
        sink.lock().expect("decisions").push((
            BrakeDecision {
                frame_id: vehicles.frame_id,
                brake,
            },
            ctx.tag().time.as_nanos(),
            vehicles.adapter_nanos,
        ));
    }

    fn decide_late(sink: &mut DecisionSink, this: &Self, ctx: &mut ReactionCtx<'_>) {
        // Deadline miss: the decision is still produced (and the miss is
        // counted by the runtime) — late but observable, never silently
        // lost.
        Self::decide(sink, this, ctx);
    }
}

/// One coordination strategy's way of constructing stage drivers.
trait DriverFactory {
    type Driver: PlatformDriver;

    /// Called once the simulation exists, before any stage is built.
    fn init(&mut self, sim: &mut Simulation);

    /// Builds the driver for one pipeline stage.
    #[allow(clippy::too_many_arguments)]
    fn make(
        &mut self,
        sim: &mut Simulation,
        name: &'static str,
        runtime: Runtime,
        clock: VirtualClock,
        outbox: Outbox,
        cost_rng: SimRng,
        data_binding: &Binding,
    ) -> Self::Driver;

    /// Called after every stage exists (topology declarations).
    fn finish(&mut self, sim: &mut Simulation);

    /// Coordination-layer report at the end of the run.
    fn report(&self) -> CoordReport;

    /// The coordinated platform built for stage `name`, when the
    /// strategy builds [`CoordinatedPlatform`]s (crash-recovery needs
    /// the concrete driver; decentralized platforms have no grant state
    /// to rejoin).
    fn coordinated(&self, _name: &str) -> Option<CoordinatedPlatform> {
        None
    }
}

/// Decentralized coordination: plain `FederatedPlatform`s, no control
/// traffic.
struct DecentralizedFactory;

impl DriverFactory for DecentralizedFactory {
    type Driver = FederatedPlatform;

    fn init(&mut self, _sim: &mut Simulation) {}

    fn make(
        &mut self,
        _sim: &mut Simulation,
        name: &'static str,
        runtime: Runtime,
        clock: VirtualClock,
        outbox: Outbox,
        cost_rng: SimRng,
        _data_binding: &Binding,
    ) -> FederatedPlatform {
        FederatedPlatform::new(name, runtime, clock, outbox, cost_rng)
    }

    fn finish(&mut self, _sim: &mut Simulation) {}

    fn report(&self) -> CoordReport {
        CoordReport {
            within_bound: true,
            ..CoordReport::default()
        }
    }
}

/// Centralized coordination: an RTI on a dedicated coordination network
/// grants every stage its tag advances. The data plane is untouched, so
/// traces stay bit-identical to the decentralized build.
struct CentralizedFactory {
    coord_link: LinkConfig,
    control_diet: bool,
    edges: [(&'static str, &'static str, Duration); 3],
    coord_net: Option<NetworkHandle>,
    coord_sd: SdRegistry,
    rti: Option<Rti>,
    platforms: Vec<(&'static str, CoordinatedPlatform)>,
}

impl CentralizedFactory {
    fn new(params: &DetParams) -> Self {
        let stp = params.latency_bound + params.clock_error;
        CentralizedFactory {
            coord_link: params.coord_link.clone(),
            control_diet: params.control_diet,
            edges: [
                ("adapter", "preprocessing", params.deadlines.adapter + stp),
                (
                    "preprocessing",
                    "computer_vision",
                    params.deadlines.preprocessing + stp,
                ),
                (
                    "computer_vision",
                    "eba",
                    params.deadlines.computer_vision + stp,
                ),
            ],
            coord_net: None,
            coord_sd: SdRegistry::new(),
            rti: None,
            platforms: Vec::new(),
        }
    }

    fn federate(&self, name: &str) -> dear_federation::FederateId {
        self.platforms
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, p)| p.federate_id())
            .expect("stage registered")
    }
}

impl DriverFactory for CentralizedFactory {
    type Driver = CoordinatedPlatform;

    fn init(&mut self, sim: &mut Simulation) {
        let coord_net = NetworkHandle::new(self.coord_link.clone(), sim.fork_rng("coord-net"));
        let rti = Rti::new(sim, &coord_net, &self.coord_sd, nodes::RTI);
        // Before any platform is built: each platform samples the diet
        // mode once, at construction.
        if self.control_diet {
            rti.enable_control_diet();
        }
        self.rti = Some(rti);
        self.coord_net = Some(coord_net);
    }

    fn make(
        &mut self,
        _sim: &mut Simulation,
        name: &'static str,
        runtime: Runtime,
        clock: VirtualClock,
        outbox: Outbox,
        cost_rng: SimRng,
        data_binding: &Binding,
    ) -> CoordinatedPlatform {
        let coord_binding = Binding::new(
            self.coord_net.as_ref().expect("init first"),
            &self.coord_sd,
            data_binding.node(),
            0x70 + u16::try_from(self.platforms.len()).expect("stage count"),
        );
        // Only the adapter takes physical inputs from outside the
        // federation (the legacy video provider).
        let external = name == "adapter";
        let platform = CoordinatedPlatform::new(
            name,
            runtime,
            clock,
            outbox,
            cost_rng,
            self.rti.as_ref().expect("init first"),
            &coord_binding,
            external,
        );
        self.platforms.push((name, platform.clone()));
        platform
    }

    fn finish(&mut self, _sim: &mut Simulation) {
        let rti = self.rti.as_ref().expect("init first");
        for (up, down, delay) in self.edges {
            rti.connect(self.federate(up), self.federate(down), delay);
        }
    }

    fn coordinated(&self, name: &str) -> Option<CoordinatedPlatform> {
        self.platforms
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, p)| p.clone())
    }

    fn report(&self) -> CoordReport {
        let mut report = CoordReport {
            within_bound: true,
            ..CoordReport::default()
        };
        for (_, p) in &self.platforms {
            let cs = p.coordination_stats();
            report.nets_sent += cs.nets_sent();
            report.ltcs_sent += cs.ltcs_sent();
            report.grants_received += cs.grants_received();
            report.ptags_received += cs.ptags_received();
            report.bound_breaches += cs.bound_breaches();
            report.grant_wait += cs.grant_wait();
            report.nets_suppressed += cs.nets_suppressed();
            report.windowed_grants += cs.windowed_grants();
            if let (Some(max), Some(bound)) = (p.max_processed_tag(), p.granted_bound()) {
                report.within_bound &= max < bound;
            }
        }
        report
    }
}

/// Runs one seeded instance of the deterministic brake assistant under
/// the configured coordination strategy.
///
/// # Panics
///
/// Panics if [`DetParams::redundancy`] is set with
/// `primary_dies_after >= frames` — a redundancy scenario must kill its
/// primary within the run. Likewise panics if [`DetParams::recovery`]
/// is set with `crash_after_frame >= frames`, or under
/// [`Coordination::Decentralized`] (crash-recovery replays granted
/// bounds, a property only the centralized driver has).
#[must_use]
pub fn run_det(seed: u64, params: &DetParams) -> DetReport {
    match params.coordination {
        Coordination::Decentralized => run_det_with(seed, params, DecentralizedFactory),
        Coordination::Centralized => run_det_with(seed, params, CentralizedFactory::new(params)),
    }
}

#[allow(clippy::too_many_lines)]
fn run_det_with<F: DriverFactory>(seed: u64, params: &DetParams, mut factory: F) -> DetReport {
    use services::{
        ADAPTER, COMPUTER_VISION, EVENTGROUP, EVENT_AUX, EVENT_MAIN, INSTANCE, PREPROCESSING, VIDEO,
    };

    let mut sim = Simulation::new(seed);
    if params.observability {
        sim.enable_observability();
    }
    let net = NetworkHandle::new(params.loopback.clone(), sim.fork_rng("net"));
    net.configure_link(nodes::PROVIDER, nodes::ADAPTER, params.ethernet.clone());
    let sd = SdRegistry::new();
    factory.init(&mut sim);
    let offer_ttl = Duration::from_secs(1 << 30);
    let cfg = DearConfig::new(params.latency_bound, params.clock_error);
    let sensor_cfg = cfg.accept_untagged();

    let spec = |service: u16, event: u16| EventSpec {
        service,
        instance: INSTANCE,
        eventgroup: EVENTGROUP,
        event,
    };

    // --- Video Adapter (sensor) -------------------------------------------
    let (adapter, adapter_failover) = {
        let outbox = Outbox::new();
        let mut b = ProgramBuilder::new();
        let camera = ClientEventTransactor::declare(&mut b, "camera");
        let publish =
            ServerEventTransactor::declare(&mut b, &outbox, "frames", params.deadlines.adapter);
        let logic: AdapterLogic = b.declare_ext(
            "adapter_logic",
            (),
            AdapterLogicExternals {
                camera: camera.event,
            },
        );
        b.connect(logic.frame, publish.event).unwrap();
        let program = b.build().expect("adapter program");
        let logic_rid = program
            .find_reaction("adapter_logic.adapt")
            .expect("adapt reaction");
        let binding = Binding::new(&net, &sd, nodes::ADAPTER, 0x20);
        let cost_rng = sim.fork_rng("adapter-costs");
        let platform = factory.make(
            &mut sim,
            "adapter",
            Runtime::new(program),
            VirtualClock::ideal(),
            outbox,
            cost_rng,
            &binding,
        );
        platform.set_reaction_cost(logic_rid, params.timings.adapter.clone());
        binding.offer(&mut sim, ServiceInstance::new(ADAPTER, INSTANCE), offer_ttl);
        // With a redundant provider group the camera binds through a
        // FailoverBinding (tracking the best VIDEO offer); the plain
        // scenario keeps the fixed-instance bind, bit-identical to the
        // pre-failover builds.
        let (s1, failover) = if let Some(red) = &params.redundancy {
            let (s1, failover) = camera.bind_failover(
                &mut sim,
                &platform,
                &binding,
                FailoverEventSpec {
                    service: VIDEO,
                    eventgroup: EVENTGROUP,
                    event: EVENT_MAIN,
                },
                sensor_cfg,
            );
            if let Some(timeout) = red.heartbeat_timeout {
                failover.enable_heartbeat(&mut sim, timeout);
            }
            (s1, Some(failover))
        } else {
            (
                camera.bind(&platform, &binding, spec(VIDEO, EVENT_MAIN), sensor_cfg),
                None,
            )
        };
        publish.bind(&platform, &binding, spec(ADAPTER, EVENT_MAIN));
        (
            Stage {
                platform,
                stats: vec![s1],
            },
            failover,
        )
    };

    // Preprocessing.
    let preprocessing = {
        let outbox = Outbox::new();
        let mut b = ProgramBuilder::new();
        let input = ClientEventTransactor::declare(&mut b, "frames");
        let publish_lane =
            ServerEventTransactor::declare(&mut b, &outbox, "lane", params.deadlines.preprocessing);
        let publish_frame = ServerEventTransactor::declare(
            &mut b,
            &outbox,
            "frame_fwd",
            params.deadlines.preprocessing,
        );
        let logic: PreprocessingLogic = b.declare_ext(
            "preprocessing_logic",
            (),
            PreprocessingLogicExternals {
                frames: input.event,
            },
        );
        b.connect(logic.lane, publish_lane.event).unwrap();
        b.connect(logic.frame, publish_frame.event).unwrap();
        let program = b.build().expect("preprocessing program");
        let logic_rid = program
            .find_reaction("preprocessing_logic.preprocess")
            .expect("preprocess reaction");
        let binding = Binding::new(&net, &sd, nodes::PREPROCESSING, 0x30);
        let cost_rng = sim.fork_rng("preproc-costs");
        let platform = factory.make(
            &mut sim,
            "preprocessing",
            Runtime::new(program),
            VirtualClock::ideal(),
            outbox,
            cost_rng,
            &binding,
        );
        platform.set_reaction_cost(logic_rid, params.timings.preprocessing.clone());
        binding.offer(
            &mut sim,
            ServiceInstance::new(PREPROCESSING, INSTANCE),
            offer_ttl,
        );
        let s1 = input.bind(&platform, &binding, spec(ADAPTER, EVENT_MAIN), cfg);
        publish_lane.bind(&platform, &binding, spec(PREPROCESSING, EVENT_MAIN));
        publish_frame.bind(&platform, &binding, spec(PREPROCESSING, EVENT_AUX));
        Stage {
            platform,
            stats: vec![s1],
        }
    };

    // Computer Vision. The program construction is factored out
    // ([`build_cv_program`]) so a crash-recovery scenario can rebuild
    // the byte-identical program for the replacement incarnation.
    let mismatches = Arc::new(Mutex::new(0u64));
    let cv_outbox = Outbox::new();
    let (cv, cv_lane_in, cv_frame_in) = {
        let (runtime, lane_in, frame_in, publish, logic_rid) =
            build_cv_program(&cv_outbox, params.deadlines.computer_vision, &mismatches);
        let binding = Binding::new(&net, &sd, nodes::COMPUTER_VISION, 0x40);
        let cost_rng = sim.fork_rng("cv-costs");
        let platform = factory.make(
            &mut sim,
            "computer_vision",
            runtime,
            VirtualClock::ideal(),
            cv_outbox.clone(),
            cost_rng,
            &binding,
        );
        platform.set_reaction_cost(logic_rid, params.timings.computer_vision.clone());
        binding.offer(
            &mut sim,
            ServiceInstance::new(COMPUTER_VISION, INSTANCE),
            offer_ttl,
        );
        let s1 = lane_in.bind(&platform, &binding, spec(PREPROCESSING, EVENT_MAIN), cfg);
        let s2 = frame_in.bind(&platform, &binding, spec(PREPROCESSING, EVENT_AUX), cfg);
        publish.bind(&platform, &binding, spec(COMPUTER_VISION, EVENT_MAIN));
        (
            Stage {
                platform,
                stats: vec![s1, s2],
            },
            lane_in,
            frame_in,
        )
    };

    // --- Crash-recovery scenario (durable log + rejoin) --------------------
    let recovered: Rc<RefCell<Option<PlatformRecovery>>> = Rc::new(RefCell::new(None));
    if let Some(rec) = params.recovery {
        assert!(
            rec.crash_after_frame < params.frames,
            "a recovery scenario must kill the CV federate within the run"
        );
        let platform = factory
            .coordinated("computer_vision")
            .expect("DetParams::recovery requires Coordination::Centralized");
        platform.attach_durable(EventLog::in_memory());
        platform.set_snapshot_every(rec.snapshot_every);
        // Both CV inboxes carry raw SOME/IP payloads; the codec is the
        // identity. The action ids are structural, so the rebuilt
        // incarnation replays into the same inboxes.
        platform.register_durable_input(
            cv_lane_in.action(),
            |frame: &FrameBuf| frame.to_vec(),
            |bytes| Some(bytes.to_vec().into()),
        );
        platform.register_durable_input(
            cv_frame_in.action(),
            |frame: &FrameBuf| frame.to_vec(),
            |bytes| Some(bytes.to_vec().into()),
        );

        let crash_at = Instant::EPOCH
            + params.period * i64::try_from(rec.crash_after_frame).expect("frame id")
            + Duration::from_nanos(params.period.as_nanos() / 4);
        let mut plan = FaultPlan::new();
        plan.crash_node(crash_at, nodes::COMPUTER_VISION)
            .restore_node(crash_at + rec.dead_for, nodes::COMPUTER_VISION);
        plan.apply(&mut sim, &net);

        let slot = recovered.clone();
        let outbox = cv_outbox.clone();
        let mismatches = mismatches.clone();
        let cv_deadline = params.deadlines.computer_vision;
        let record_traces = params.record_traces;
        net.on_node_event(move |sim, node, up| {
            if node != nodes::COMPUTER_VISION {
                return;
            }
            if up {
                // The replacement incarnation: reset the outbox so the
                // rebuilt transactors re-claim the same route ids,
                // rebuild the identical program, and replay the log.
                outbox.reset();
                let (mut runtime, _, _, _, _) = build_cv_program(&outbox, cv_deadline, &mismatches);
                if record_traces {
                    runtime.enable_tracing();
                }
                *slot.borrow_mut() = Some(platform.recover(sim, runtime));
            } else {
                platform.crash(sim);
            }
        });
    }

    // EBA.
    let decisions: Arc<Mutex<Vec<(BrakeDecision, u64, u64)>>> = Arc::new(Mutex::new(Vec::new()));
    let eba = {
        let outbox = Outbox::new();
        let mut b = ProgramBuilder::new();
        let input = ClientEventTransactor::declare(&mut b, "vehicles");
        let _logic: EbaLogic = b.declare_ext(
            "eba_logic",
            decisions.clone(),
            EbaLogicExternals {
                vehicles: input.event,
                deadline: params.deadlines.eba,
            },
        );
        let program = b.build().expect("eba program");
        let logic_rid = program
            .find_reaction("eba_logic.decide")
            .expect("decide reaction");
        let binding = Binding::new(&net, &sd, nodes::EBA, 0x50);
        let cost_rng = sim.fork_rng("eba-costs");
        let platform = factory.make(
            &mut sim,
            "eba",
            Runtime::new(program),
            VirtualClock::ideal(),
            outbox,
            cost_rng,
            &binding,
        );
        platform.set_reaction_cost(logic_rid, params.timings.eba.clone());
        let s1 = input.bind(&platform, &binding, spec(COMPUTER_VISION, EVENT_MAIN), cfg);
        Stage {
            platform,
            stats: vec![s1],
        }
    };

    // --- Video Provider (plain, untagged AP component; redundancy runs
    // a primary/standby pair instead) --------------------------------------
    let primary_death_at: Rc<Cell<Option<Instant>>> = Rc::new(Cell::new(None));
    if let Some(red) = params.redundancy {
        build_redundant_providers(&mut sim, &net, &sd, params, red, primary_death_at.clone());
    } else {
        let provider_binding = Binding::new(&net, &sd, nodes::PROVIDER, 0x10);
        provider_binding.offer(&mut sim, ServiceInstance::new(VIDEO, INSTANCE), offer_ttl);
        let rng = sim.fork_rng("provider");
        let jitter = params.provider_jitter;
        let period = params.period;
        let frames_total = params.frames;
        let binding = provider_binding.clone();
        fn send_frame(
            sim: &mut Simulation,
            binding: Binding,
            mut rng: dear_sim::SimRng,
            id: u64,
            total: u64,
            period: Duration,
            jitter: Duration,
        ) {
            if id >= total {
                return;
            }
            let frame = Frame::new(id, sim.now().as_nanos());
            binding.notify(
                sim,
                ServiceInstance::new(services::VIDEO, services::INSTANCE),
                services::EVENTGROUP,
                services::EVENT_MAIN,
                frame.to_payload(),
            );
            let next = if jitter.is_zero() {
                period
            } else {
                period + rng.uniform_duration(-jitter, jitter)
            };
            sim.schedule_in(next, move |sim| {
                send_frame(sim, binding, rng, id + 1, total, period, jitter)
            });
        }
        sim.schedule_at(Instant::EPOCH, move |sim| {
            send_frame(sim, binding, rng, 0, frames_total, period, jitter)
        });
    }

    // --- Run ---------------------------------------------------------------
    factory.finish(&mut sim);
    let all_stages = [adapter, preprocessing, cv, eba];
    for stage in &all_stages {
        if params.record_traces {
            stage.platform.with_runtime(|rt| rt.enable_tracing());
        }
        stage.platform.start(&mut sim);
    }
    let horizon = Instant::EPOCH
        + params.period * i64::try_from(params.frames).expect("frame count")
        + Duration::from_secs(1);
    sim.run_until(horizon);

    // --- Collect -----------------------------------------------------------
    let mut stp = 0;
    let mut misses = 0;
    let mut untagged = 0;
    for stage in &all_stages {
        let rt = stage.platform.runtime_stats();
        stp += rt.stp_violations;
        misses += rt.deadline_misses;
        for s in &stage.stats {
            stp += s.stp_violations();
            untagged += s.untagged_dropped();
        }
    }

    let stage_traces: Vec<(String, u64)> = if params.record_traces {
        all_stages
            .iter()
            .map(|stage| {
                let fingerprint = stage
                    .platform
                    .with_runtime(|rt| rt.take_trace())
                    .fingerprint();
                (stage.platform.driver_name(), fingerprint)
            })
            .collect()
    } else {
        Vec::new()
    };
    let coordination = factory.report();

    let mismatches_cv = *mismatches.lock().expect("mismatch counter");
    let collected = std::mem::take(&mut *decisions.lock().expect("decisions"));

    let failover = params.redundancy.map(|red| {
        let primary_died_at = primary_death_at
            .get()
            .expect("redundancy scenarios kill the primary within the horizon");
        let failover_binding = adapter_failover
            .as_ref()
            .expect("redundancy scenarios bind the camera through a FailoverBinding");
        let first_backup_frame_at = collected
            .iter()
            .find(|(d, _, _)| d.frame_id > red.primary_dies_after)
            .map(|&(_, _, adapter_nanos)| Instant::from_nanos(adapter_nanos));
        FailoverReport {
            primary_died_at,
            rebound_at: failover_binding.last_failover_at(),
            first_backup_frame_at,
            failover_latency: first_backup_frame_at.map(|at| at - primary_died_at),
            failovers: failover_binding.failovers(),
        }
    });

    let recovery = params.recovery.map(|_| {
        let r = recovered
            .borrow_mut()
            .take()
            .expect("recovery scenarios restart the CV federate within the horizon");
        RecoveryReport {
            crashed_at: r.crashed_at,
            rejoined_at: r.rejoined_at,
            outage: r.rejoined_at - r.crashed_at,
            replayed_tags: r.replayed_tags,
            replayed_inputs: r.replayed_inputs,
            suppressed_sends: r.suppressed_sends,
            resent_sends: r.resent_sends,
            replay_mismatches: r.replay_mismatches,
            incarnation: r.incarnation,
        }
    });

    let mut wrong = 0;
    let mut out_decisions = Vec::with_capacity(collected.len());
    let mut end_to_end = Vec::with_capacity(collected.len());
    for (d, eba_nanos, adapter_nanos) in collected {
        if d.brake != crate::logic::reference_decision(d.frame_id) {
            wrong += 1;
        }
        end_to_end.push(Duration::from_nanos(
            i64::try_from(eba_nanos - adapter_nanos).expect("latency fits"),
        ));
        out_decisions.push(d);
    }

    DetReport {
        frames_sent: params.frames,
        decisions: out_decisions,
        end_to_end,
        mismatches_cv,
        stp_violations: stp,
        deadline_misses: misses,
        untagged_dropped: untagged,
        wrong_decisions: wrong,
        stage_traces,
        coordination,
        failover,
        recovery,
        metrics_snapshot: sim.observe().snapshot(),
    }
}

/// Builds the Computer Vision stage program.
///
/// Factored out of [`run_det_with`] so a crash-recovery scenario can
/// rebuild the exact same program — declaration order and all — for the
/// replacement incarnation: action and reaction ids are structural, so
/// the registered input codecs, route handlers and reaction-cost models
/// of the dead incarnation apply unchanged to the rebuilt one.
fn build_cv_program(
    outbox: &Outbox,
    deadline: Duration,
    mismatches: &Arc<Mutex<u64>>,
) -> (
    Runtime,
    ClientEventTransactor,
    ClientEventTransactor,
    ServerEventTransactor,
    ReactionId,
) {
    let mut b = ProgramBuilder::new();
    let lane_in = ClientEventTransactor::declare(&mut b, "lane");
    let frame_in = ClientEventTransactor::declare(&mut b, "frame_fwd");
    let publish = ServerEventTransactor::declare(&mut b, outbox, "vehicles", deadline);
    let logic: ComputerVisionLogic = b.declare_ext(
        "computer_vision_logic",
        mismatches.clone(),
        ComputerVisionLogicExternals {
            lane: lane_in.event,
            frame: frame_in.event,
        },
    );
    b.connect(logic.vehicles, publish.event).unwrap();
    let program = b.build().expect("cv program");
    let logic_rid = program
        .find_reaction("computer_vision_logic.detect")
        .expect("detect reaction");
    (Runtime::new(program), lane_in, frame_in, publish, logic_rid)
}

/// Builds the primary/standby Video Provider pair of a redundancy
/// scenario (see [`RedundancyParams`]).
fn build_redundant_providers(
    sim: &mut Simulation,
    net: &NetworkHandle,
    sd: &SdRegistry,
    params: &DetParams,
    red: RedundancyParams,
    death_at: Rc<Cell<Option<Instant>>>,
) {
    use crate::nondet::services::{BACKUP_INSTANCE, EVENTGROUP, EVENT_MAIN, VIDEO};
    use services::INSTANCE;

    assert!(
        red.primary_dies_after < params.frames,
        "redundancy requires the primary to die within the run: \
         primary_dies_after = {} but frames = {}",
        red.primary_dies_after,
        params.frames
    );

    let primary_inst = ServiceInstance::new(VIDEO, INSTANCE);
    let backup_inst = ServiceInstance::new(VIDEO, BACKUP_INSTANCE);
    // The standby sits next to the primary on platform 1: both reach the
    // adapter over the Ethernet link, and the replication feed (primary →
    // standby) crosses the same switch.
    net.configure_link(
        nodes::PROVIDER_BACKUP,
        nodes::ADAPTER,
        params.ethernet.clone(),
    );
    net.configure_link(
        nodes::PROVIDER,
        nodes::PROVIDER_BACKUP,
        params.ethernet.clone(),
    );

    let primary_binding = Binding::new(net, sd, nodes::PROVIDER, 0x10);
    let backup_binding = Binding::new(net, sd, nodes::PROVIDER_BACKUP, 0x11);

    // Offer order matters for the adapter's very first bind: the primary
    // first, so the failover binding never transits through the standby.
    let primary_alive = Rc::new(Cell::new(true));
    sd.offer_prioritized(sim, primary_inst, nodes::PROVIDER, red.offer_ttl, 0);
    sd.offer_prioritized(sim, backup_inst, nodes::PROVIDER_BACKUP, red.offer_ttl, 1);
    OfferRenewal {
        sd: sd.clone(),
        instance: primary_inst,
        node: nodes::PROVIDER,
        ttl: red.offer_ttl,
        period: red.reoffer_period,
        priority: 0,
        alive: primary_alive.clone(),
    }
    .arm(sim);
    OfferRenewal {
        sd: sd.clone(),
        instance: backup_inst,
        node: nodes::PROVIDER_BACKUP,
        ttl: red.offer_ttl,
        period: red.reoffer_period,
        priority: 1,
        alive: Rc::new(Cell::new(true)), // the standby never dies
    }
    .arm(sim);

    // The standby replicates the primary's frame stream by subscribing
    // to it, and takes over when SD drops the primary or (with a
    // heartbeat watchdog) when the stream goes silent.
    let backup = Rc::new(BackupProvider {
        binding: backup_binding.clone(),
        instance: backup_inst,
        eventgroup: EVENTGROUP,
        event: EVENT_MAIN,
        active: Cell::new(false),
        last_seen: Cell::new(None),
        next_id: Cell::new(0),
        rng: RefCell::new(sim.fork_rng("provider-backup")),
        period: params.period,
        jitter: params.provider_jitter,
        total: params.frames,
        watchdog_gen: Cell::new(0),
        timeout: red.heartbeat_timeout,
    });
    sd.subscribe(primary_inst, EVENTGROUP, nodes::PROVIDER_BACKUP);
    {
        let backup = backup.clone();
        backup_binding.on_event(VIDEO, EVENT_MAIN, move |sim, msg| {
            if let Ok(frame) = Frame::from_payload(&msg.payload) {
                backup.on_replicated(sim, frame.id);
            }
        });
    }
    {
        let backup = backup.clone();
        sd.watch(sim, VIDEO, dear_someip::ANY_INSTANCE, move |sim, best| {
            if best.map(|o| o.instance) == Some(backup_inst) {
                backup.activate(sim);
            }
        });
    }
    backup.arm_watchdog(sim);

    // The primary: the plain provider loop, crashing right after frame
    // `primary_dies_after`.
    let looper = PrimaryLoop {
        binding: primary_binding,
        sd: sd.clone(),
        rng: sim.fork_rng("provider"),
        instance: primary_inst,
        eventgroup: EVENTGROUP,
        event: EVENT_MAIN,
        total: params.frames,
        dies_after: red.primary_dies_after,
        period: params.period,
        jitter: params.provider_jitter,
        graceful: red.graceful,
        alive: primary_alive,
        death_at,
    };
    sim.schedule_at(Instant::EPOCH, move |sim| looper.tick(sim, 0));
}

/// A provider's periodic offer renewal (the SOME/IP-SD heartbeat); stops
/// when the provider dies.
struct OfferRenewal {
    sd: SdRegistry,
    instance: ServiceInstance,
    node: dear_sim::NodeId,
    ttl: Duration,
    period: Duration,
    priority: u8,
    alive: Rc<Cell<bool>>,
}

impl OfferRenewal {
    fn arm(self, sim: &mut Simulation) {
        let period = self.period;
        sim.schedule_in(period, move |sim| self.tick(sim));
    }

    fn tick(self, sim: &mut Simulation) {
        if !self.alive.get() {
            return;
        }
        self.sd
            .offer_prioritized(sim, self.instance, self.node, self.ttl, self.priority);
        self.arm(sim);
    }
}

/// The primary Video Provider of a redundancy scenario: the plain frame
/// loop, dying right after `dies_after` (StopOffer when graceful, silent
/// crash otherwise).
struct PrimaryLoop {
    binding: Binding,
    sd: SdRegistry,
    rng: dear_sim::SimRng,
    instance: ServiceInstance,
    eventgroup: u16,
    event: u16,
    total: u64,
    dies_after: u64,
    period: Duration,
    jitter: Duration,
    graceful: bool,
    alive: Rc<Cell<bool>>,
    death_at: Rc<Cell<Option<Instant>>>,
}

impl PrimaryLoop {
    fn tick(mut self, sim: &mut Simulation, id: u64) {
        if id >= self.total {
            return;
        }
        let frame = Frame::new(id, sim.now().as_nanos());
        self.binding.notify(
            sim,
            self.instance,
            self.eventgroup,
            self.event,
            frame.to_payload(),
        );
        if id >= self.dies_after {
            // The crash: no further frames, no further renewals; a
            // graceful death also withdraws the offer at this very tag.
            self.alive.set(false);
            self.death_at.set(Some(sim.now()));
            sim.trace_with("failover", || {
                format!("primary provider dies after frame {id}")
            });
            if self.graceful {
                self.sd.stop_offer(sim, self.instance);
            }
            return;
        }
        let next = if self.jitter.is_zero() {
            self.period
        } else {
            let jitter = self.jitter;
            self.period + self.rng.uniform_duration(-jitter, jitter)
        };
        sim.schedule_in(next, move |sim| self.tick(sim, id + 1));
    }
}

/// The warm-standby Video Provider: replicates the primary's stream by
/// subscription, resumes it at the next frame id once activated.
struct BackupProvider {
    binding: Binding,
    instance: ServiceInstance,
    eventgroup: u16,
    event: u16,
    active: Cell<bool>,
    /// Highest frame id observed from the primary.
    last_seen: Cell<Option<u64>>,
    /// Next frame id this standby itself would send.
    next_id: Cell<u64>,
    rng: RefCell<dear_sim::SimRng>,
    period: Duration,
    jitter: Duration,
    total: u64,
    watchdog_gen: Cell<u64>,
    timeout: Option<Duration>,
}

impl BackupProvider {
    fn on_replicated(self: &Rc<Self>, sim: &mut Simulation, id: u64) {
        let seen = self.last_seen.get().map_or(id, |s| s.max(id));
        self.last_seen.set(Some(seen));
        self.arm_watchdog(sim);
    }

    /// (Re-)arms the stream-silence watchdog; superseded by later frames.
    fn arm_watchdog(self: &Rc<Self>, sim: &mut Simulation) {
        let Some(timeout) = self.timeout else { return };
        if self.active.get() {
            return;
        }
        self.watchdog_gen.set(self.watchdog_gen.get() + 1);
        let generation = self.watchdog_gen.get();
        let this = self.clone();
        sim.schedule_in(timeout, move |sim| {
            if this.watchdog_gen.get() == generation && !this.active.get() {
                this.activate(sim);
            }
        });
    }

    fn activate(self: &Rc<Self>, sim: &mut Simulation) {
        if self.active.get() {
            return;
        }
        self.active.set(true);
        sim.trace_with("failover", || {
            let seen = self.last_seen.get();
            format!("standby provider takes over (last replicated frame: {seen:?})")
        });
        // The first frame goes out one period after takeover; the id is
        // decided *then*, so replicated frames still in flight at this
        // tag are never re-sent.
        let this = self.clone();
        sim.schedule_in(self.period, move |sim| this.send(sim));
    }

    fn send(self: &Rc<Self>, sim: &mut Simulation) {
        // Resume strictly after everything replicated so far and
        // everything this standby already sent itself.
        let id = self
            .next_id
            .get()
            .max(self.last_seen.get().map_or(0, |s| s + 1));
        if id >= self.total {
            return;
        }
        let frame = Frame::new(id, sim.now().as_nanos());
        self.binding.notify(
            sim,
            self.instance,
            self.eventgroup,
            self.event,
            frame.to_payload(),
        );
        self.next_id.set(id + 1);
        let next = if self.jitter.is_zero() {
            self.period
        } else {
            let jitter = self.jitter;
            self.period + self.rng.borrow_mut().uniform_duration(-jitter, jitter)
        };
        let this = self.clone();
        sim.schedule_in(next, move |sim| this.send(sim));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_params() -> DetParams {
        DetParams {
            frames: 100,
            ..DetParams::default()
        }
    }

    #[test]
    fn deterministic_build_is_error_free() {
        let report = run_det(1, &small_params());
        assert_eq!(report.decisions.len(), 100, "every frame decided");
        assert_eq!(report.mismatches_cv, 0);
        assert_eq!(report.stp_violations, 0);
        assert_eq!(report.deadline_misses, 0);
        assert_eq!(report.untagged_dropped, 0);
        assert_eq!(report.wrong_decisions, 0);
        // Frames arrive in order, none dropped.
        let ids: Vec<u64> = report.decisions.iter().map(|d| d.frame_id).collect();
        assert_eq!(ids, (0..100).collect::<Vec<u64>>());
    }

    #[test]
    fn end_to_end_latency_is_the_constant_deadline_sum() {
        let params = small_params();
        let report = run_det(3, &params);
        // (Da + L) + (Dp + L) + (Dcv + L) = 10 + 30 + 30 = 70 ms.
        let expected = Duration::from_millis(70);
        for (i, &l) in report.end_to_end.iter().enumerate() {
            assert_eq!(l, expected, "decision {i}");
        }
    }

    #[test]
    fn decisions_identical_across_seeds() {
        let params = small_params();
        let fp: Vec<u64> = (0..5)
            .map(|s| run_det(s, &params).decision_fingerprint())
            .collect();
        for f in &fp[1..] {
            assert_eq!(*f, fp[0], "decision sequence must not depend on seed");
        }
    }

    #[test]
    fn centralized_coordination_is_observably_identical() {
        let mut params = small_params();
        params.frames = 50;
        params.record_traces = true;
        let dec = run_det(2, &params);
        params.coordination = Coordination::Centralized;
        let cen = run_det(2, &params);
        assert_eq!(dec.stage_traces, cen.stage_traces, "event traces");
        assert_eq!(dec.decision_fingerprint(), cen.decision_fingerprint());
        assert_eq!(cen.stp_violations, 0);
        // The grant machinery ran and was never outrun.
        assert!(cen.coordination.grants_received > 0);
        assert!(cen.coordination.within_bound);
        assert_eq!(cen.coordination.bound_breaches, 0);
        // Decentralized runs carry no coordination traffic at all.
        assert_eq!(dec.coordination.grants_received, 0);
    }

    fn failover_params(graceful: bool, heartbeat: Option<Duration>) -> DetParams {
        DetParams {
            frames: 120,
            redundancy: Some(RedundancyParams {
                primary_dies_after: 49,
                graceful,
                offer_ttl: Duration::from_millis(400),
                reoffer_period: Duration::from_millis(150),
                heartbeat_timeout: heartbeat,
            }),
            ..DetParams::default()
        }
    }

    #[test]
    fn graceful_failover_delivers_every_frame_exactly_once() {
        let report = run_det(1, &failover_params(true, None));
        let ids: Vec<u64> = report.decisions.iter().map(|d| d.frame_id).collect();
        assert_eq!(
            ids,
            (0..120).collect::<Vec<u64>>(),
            "no frame lost, none duplicated across the handover"
        );
        assert_eq!(report.mismatches_cv, 0);
        assert_eq!(report.stp_violations, 0);
        assert_eq!(report.wrong_decisions, 0);
        let fo = report.failover.expect("failover report");
        assert_eq!(fo.failovers, 1, "exactly one re-binding");
        // Graceful: the StopOffer triggers the re-binding at the very
        // tag the primary died.
        assert_eq!(fo.rebound_at, Some(fo.primary_died_at));
        let latency = fo.failover_latency.expect("backup delivered");
        assert!(
            latency > Duration::ZERO && latency < Duration::from_millis(100),
            "graceful handover costs about one frame period, got {latency}"
        );
    }

    #[test]
    fn crash_failover_rebinds_at_the_ttl_expiry_tag() {
        let params = failover_params(false, None);
        let red = params.redundancy.unwrap();
        let report = run_det(2, &params);
        let ids: Vec<u64> = report.decisions.iter().map(|d| d.frame_id).collect();
        assert_eq!(ids, (0..120).collect::<Vec<u64>>());
        let fo = report.failover.expect("failover report");
        assert_eq!(fo.failovers, 1);
        // Silent crash: the offer of the dead primary lapses exactly one
        // nanosecond after its last renewal's TTL ran out.
        let died = fo.primary_died_at;
        let renewals =
            i64::try_from(died.as_nanos()).expect("tag fits") / red.reoffer_period.as_nanos();
        let last_renewal = Instant::EPOCH + red.reoffer_period * renewals;
        assert_eq!(
            fo.rebound_at,
            Some(last_renewal + red.offer_ttl + Duration::from_nanos(1)),
            "died at {died}"
        );
        assert!(fo.failover_latency.unwrap() > red.offer_ttl / 2);
    }

    #[test]
    fn heartbeat_watchdog_beats_ttl_expiry() {
        let slow = run_det(3, &failover_params(false, None));
        let fast = run_det(3, &failover_params(false, Some(Duration::from_millis(150))));
        for r in [&slow, &fast] {
            assert_eq!(r.decisions.len(), 120);
            assert_eq!(r.failover.unwrap().failovers, 1);
        }
        let slow_latency = slow.failover.unwrap().failover_latency.unwrap();
        let fast_latency = fast.failover.unwrap().failover_latency.unwrap();
        assert!(
            fast_latency < slow_latency,
            "silence detection ({fast_latency}) must beat TTL expiry ({slow_latency})"
        );
    }

    #[test]
    fn failover_decisions_identical_across_seeds() {
        for params in [
            failover_params(true, None),
            failover_params(false, None),
            failover_params(false, Some(Duration::from_millis(150))),
        ] {
            let fp: Vec<u64> = (0..4)
                .map(|s| run_det(s, &params).decision_fingerprint())
                .collect();
            for f in &fp[1..] {
                assert_eq!(*f, fp[0], "decision sequence must not depend on seed");
            }
        }
    }

    #[test]
    fn failover_replay_is_byte_identical() {
        // The determinism claim under faults: the same seed replays the
        // whole run — including the crash, the SD churn and the
        // re-binding — with byte-identical per-stage event traces.
        let mut params = failover_params(false, Some(Duration::from_millis(150)));
        params.record_traces = true;
        let a = run_det(7, &params);
        let b = run_det(7, &params);
        assert_eq!(a.stage_traces, b.stage_traces);
        assert_eq!(a.failover, b.failover);
        assert_eq!(a.decision_fingerprint(), b.decision_fingerprint());
        assert!(!a.stage_traces.is_empty());
    }

    #[test]
    fn aggressive_deadlines_cause_observable_errors() {
        // "For certain applications it is acceptable to deliberately
        // introduce the possibility of sporadic errors by setting
        // deadlines to values lower than the actual WCET" (§IV.B). With
        // deadlines far below the stage compute time, events release
        // logically before the stage output physically arrives, so the
        // faults surface as observable errors — tag misalignment at CV,
        // safe-to-process violations, or deadline misses — never as
        // silent reordering.
        let mut params = small_params();
        params.frames = 50;
        params.deadlines.preprocessing = Duration::from_millis(2);
        params.deadlines.computer_vision = Duration::from_millis(2);
        let report = run_det(1, &params);
        let observable = report.mismatches_cv + report.stp_violations + report.deadline_misses;
        assert!(
            observable > 0,
            "deadlines far below stage compute must produce observable errors: {report:?}"
        );
        // But determinism of the decision *content* still holds.
        assert_eq!(report.wrong_decisions, 0);
    }
}
