//! Data types flowing through the brake-assistant pipeline, with SOME/IP
//! payload codecs and deterministic synthetic generators.
//!
//! The paper's errors are independent of actual image content — what
//! matters is frame *identity* (to detect misalignment) and timing. The
//! synthetic [`Frame`] therefore carries an id and timestamps, and the
//! "vision" results ([`LaneBox`], [`Vehicle`]) are pure functions of the
//! frame id, so that any two correct executions must produce identical
//! outputs — which is exactly what the determinism checks compare.

use dear_someip::{FrameBuf, PayloadError, PayloadReader, PayloadWriter};

/// Mixes a 64-bit value (SplitMix64 finalizer); used to derive
/// deterministic pseudo-content from frame ids.
#[must_use]
pub fn mix(v: u64) -> u64 {
    let mut z = v.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A captured video frame (synthetic).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Frame {
    /// Monotone frame number assigned by the video provider.
    pub id: u64,
    /// Capture time in nanoseconds (provider clock).
    pub capture_nanos: u64,
    /// Tag time assigned by the video adapter when the frame entered the
    /// reactor network (0 in the nondeterministic build).
    pub adapter_nanos: u64,
}

impl Frame {
    /// Creates a frame at capture time.
    #[must_use]
    pub fn new(id: u64, capture_nanos: u64) -> Self {
        Frame {
            id,
            capture_nanos,
            adapter_nanos: 0,
        }
    }

    /// Serializes to a SOME/IP payload.
    #[must_use]
    pub fn to_payload(&self) -> FrameBuf {
        let mut w = PayloadWriter::new();
        w.write_u64(self.id)
            .write_u64(self.capture_nanos)
            .write_u64(self.adapter_nanos);
        w.into_frame()
    }

    /// Parses from a SOME/IP payload.
    ///
    /// # Errors
    ///
    /// Returns a [`PayloadError`] on malformed payloads.
    pub fn from_payload(bytes: &[u8]) -> Result<Self, PayloadError> {
        let mut r = PayloadReader::new(bytes);
        let frame = Frame {
            id: r.read_u64()?,
            capture_nanos: r.read_u64()?,
            adapter_nanos: r.read_u64()?,
        };
        r.finish()?;
        Ok(frame)
    }
}

/// The bounding box demarcating the current travel lane in one frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LaneBox {
    /// The frame this lane estimate belongs to.
    pub frame_id: u64,
    /// Left edge (pixels).
    pub x0: u16,
    /// Top edge (pixels).
    pub y0: u16,
    /// Right edge (pixels).
    pub x1: u16,
    /// Bottom edge (pixels).
    pub y1: u16,
}

impl LaneBox {
    /// Serializes to a SOME/IP payload.
    #[must_use]
    pub fn to_payload(&self) -> FrameBuf {
        let mut w = PayloadWriter::new();
        w.write_u64(self.frame_id)
            .write_u16(self.x0)
            .write_u16(self.y0)
            .write_u16(self.x1)
            .write_u16(self.y1);
        w.into_frame()
    }

    /// Parses from a SOME/IP payload.
    ///
    /// # Errors
    ///
    /// Returns a [`PayloadError`] on malformed payloads.
    pub fn from_payload(bytes: &[u8]) -> Result<Self, PayloadError> {
        let mut r = PayloadReader::new(bytes);
        let lane = LaneBox {
            frame_id: r.read_u64()?,
            x0: r.read_u16()?,
            y0: r.read_u16()?,
            x1: r.read_u16()?,
            y1: r.read_u16()?,
        };
        r.finish()?;
        Ok(lane)
    }
}

/// A detected vehicle with estimated distance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Vehicle {
    /// Track id within the frame.
    pub track: u32,
    /// Estimated distance in millimetres.
    pub distance_mm: u32,
}

/// The vehicle list produced by Computer Vision for one frame.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct VehicleList {
    /// The frame these detections belong to.
    pub frame_id: u64,
    /// Frame capture time (carried through for latency accounting).
    pub capture_nanos: u64,
    /// Adapter tag time (carried through for latency accounting).
    pub adapter_nanos: u64,
    /// Detected vehicles in the travel lane.
    pub vehicles: Vec<Vehicle>,
}

impl VehicleList {
    /// Serializes to a SOME/IP payload.
    #[must_use]
    pub fn to_payload(&self) -> FrameBuf {
        let mut w = PayloadWriter::new();
        w.write_u64(self.frame_id)
            .write_u64(self.capture_nanos)
            .write_u64(self.adapter_nanos)
            .write_u32(u32::try_from(self.vehicles.len()).expect("too many vehicles"));
        for v in &self.vehicles {
            w.write_u32(v.track).write_u32(v.distance_mm);
        }
        w.into_frame()
    }

    /// Parses from a SOME/IP payload.
    ///
    /// # Errors
    ///
    /// Returns a [`PayloadError`] on malformed payloads.
    pub fn from_payload(bytes: &[u8]) -> Result<Self, PayloadError> {
        let mut r = PayloadReader::new(bytes);
        let frame_id = r.read_u64()?;
        let capture_nanos = r.read_u64()?;
        let adapter_nanos = r.read_u64()?;
        let n = r.read_u32()?;
        let mut vehicles = Vec::with_capacity(n as usize);
        for _ in 0..n {
            vehicles.push(Vehicle {
                track: r.read_u32()?,
                distance_mm: r.read_u32()?,
            });
        }
        r.finish()?;
        Ok(VehicleList {
            frame_id,
            capture_nanos,
            adapter_nanos,
            vehicles,
        })
    }
}

/// The emergency-brake decision for one frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BrakeDecision {
    /// The frame the decision derives from.
    pub frame_id: u64,
    /// Whether an emergency brake maneuver is required.
    pub brake: bool,
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn frame_payload_roundtrip() {
        let f = Frame {
            id: 42,
            capture_nanos: 1_000_000,
            adapter_nanos: 2_000_000,
        };
        assert_eq!(Frame::from_payload(&f.to_payload()).unwrap(), f);
    }

    #[test]
    fn lane_payload_roundtrip() {
        let l = LaneBox {
            frame_id: 7,
            x0: 1,
            y0: 2,
            x1: 3,
            y1: 4,
        };
        assert_eq!(LaneBox::from_payload(&l.to_payload()).unwrap(), l);
    }

    #[test]
    fn vehicle_list_payload_roundtrip() {
        let v = VehicleList {
            frame_id: 9,
            capture_nanos: 5,
            adapter_nanos: 6,
            vehicles: vec![
                Vehicle {
                    track: 1,
                    distance_mm: 25_000,
                },
                Vehicle {
                    track: 2,
                    distance_mm: 60_000,
                },
            ],
        };
        assert_eq!(VehicleList::from_payload(&v.to_payload()).unwrap(), v);
    }

    #[test]
    fn truncated_payloads_error() {
        let f = Frame::new(1, 2).to_payload();
        assert!(Frame::from_payload(&f[..10]).is_err());
        let v = VehicleList {
            frame_id: 1,
            capture_nanos: 0,
            adapter_nanos: 0,
            vehicles: vec![Vehicle {
                track: 0,
                distance_mm: 1,
            }],
        }
        .to_payload();
        assert!(VehicleList::from_payload(&v[..v.len() - 2]).is_err());
    }

    #[test]
    fn mix_is_deterministic_and_spreads() {
        assert_eq!(mix(1), mix(1));
        assert_ne!(mix(1), mix(2));
    }

    proptest! {
        #[test]
        fn prop_frame_roundtrip(id in any::<u64>(), cap in any::<u64>(), ad in any::<u64>()) {
            let f = Frame { id, capture_nanos: cap, adapter_nanos: ad };
            prop_assert_eq!(Frame::from_payload(&f.to_payload()).unwrap(), f);
        }

        #[test]
        fn prop_vehicle_list_roundtrip(
            frame_id in any::<u64>(),
            vehicles in proptest::collection::vec((any::<u32>(), any::<u32>()), 0..8)
        ) {
            let v = VehicleList {
                frame_id,
                capture_nanos: 0,
                adapter_nanos: 0,
                vehicles: vehicles.into_iter().map(|(track, distance_mm)| Vehicle { track, distance_mm }).collect(),
            };
            prop_assert_eq!(VehicleList::from_payload(&v.to_payload()).unwrap(), v);
        }
    }
}
