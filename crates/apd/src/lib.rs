//! # dear-apd — the Adaptive Platform Demonstrator case studies
//!
//! Executable reproductions of the paper's evaluation applications:
//!
//! * [`calculator`] — the Figure 1 client/server app whose printed value
//!   is one of {0, 1, 2, 3} depending on thread-dispatch order;
//! * [`nondet`] — the nondeterministic brake assistant of Figure 4, with
//!   one-slot buffers, 50 ms periodic callbacks, and the four error types
//!   of Figure 5 instrumented;
//! * [`det`] — the deterministic DEAR port of §IV.B (same logic, reactor
//!   coordination, tagged SOME/IP, deadlines 5/25/25/5 ms, L = 5 ms,
//!   E = 0);
//! * [`det_calculator`] — the DEAR fix for Figure 1: concurrent calls,
//!   deterministic result;
//! * [`logic`] / [`types`] — the shared pure stage logic and payload
//!   types, so the two builds differ *only* in coordination.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod calculator;
pub mod det;
pub mod det_calculator;
pub mod logic;
pub mod nondet;
pub mod types;

pub use det::{
    run_det, CoordReport, DetParams, DetReport, FailoverReport, RecoveryParams, RecoveryReport,
    RedundancyParams, StageDeadlines,
};
pub use logic::{detect_vehicles, eba_decide, preprocess, reference_decision, StageTimings};
pub use nondet::{run_nondet, NondetParams, NondetReport};
pub use types::{BrakeDecision, Frame, LaneBox, Vehicle, VehicleList};
