//! Crash-recovery on the brake-assistant pipeline: the Computer Vision
//! federate is killed mid-run, restarted from its durable event log,
//! and rejoins the RTI — and the result is byte-identical to a run
//! that never crashed.
//!
//! The low-level recovery machinery (log replay, suppression
//! watermarks, rejoin retreats, hierarchy fan-out) is covered by
//! `dear-federation`'s `tests/recovery.rs` proptests; these tests hold
//! the end-to-end scenario plumbing in `dear-apd` to the same bar.

use dear_apd::{run_det, DetParams, RecoveryParams};
use dear_time::Duration;
use dear_transactors::Coordination;

const FRAMES: u64 = 100;
const KILL_AFTER: u64 = 50;

fn params(diet: bool, recovery: Option<RecoveryParams>) -> DetParams {
    DetParams {
        frames: FRAMES,
        coordination: Coordination::Centralized,
        control_diet: diet,
        record_traces: true,
        recovery,
        ..DetParams::default()
    }
}

fn recovery(dead_for: Duration, snapshot_every: u64) -> RecoveryParams {
    RecoveryParams {
        crash_after_frame: KILL_AFTER,
        dead_for,
        snapshot_every,
    }
}

#[test]
fn recovered_run_is_byte_identical_across_seeds_and_diet() {
    for diet in [false, true] {
        for seed in [0, 3] {
            let baseline = run_det(seed, &params(diet, None));
            let r = run_det(
                seed,
                &params(diet, Some(recovery(Duration::from_millis(10), 16))),
            );
            let rec = r.recovery.expect("recovery report");
            assert_eq!(
                r.decision_fingerprint(),
                baseline.decision_fingerprint(),
                "diet={diet} seed {seed}: decisions must match the never-crashed run"
            );
            assert_eq!(
                r.stage_traces, baseline.stage_traces,
                "diet={diet} seed {seed}: per-stage event traces must be byte-identical"
            );
            assert_eq!(r.decisions.len() as u64, FRAMES);
            assert_eq!(rec.replay_mismatches, 0);
            assert!(rec.replayed_tags > 0, "the log replay must do real work");
            assert!(rec.replayed_inputs > 0);
            assert_eq!(rec.incarnation, 1);
            assert_eq!(r.stp_violations, 0);
            assert_eq!(r.mismatches_cv, 0);
            assert_eq!(r.wrong_decisions, 0);
        }
    }
}

#[test]
fn snapshot_cadence_is_invisible_in_the_outcome() {
    let dense = run_det(
        7,
        &params(false, Some(recovery(Duration::from_millis(10), 1))),
    );
    let sparse = run_det(
        7,
        &params(false, Some(recovery(Duration::from_millis(10), 64))),
    );
    assert_eq!(dense.decision_fingerprint(), sparse.decision_fingerprint());
    assert_eq!(dense.stage_traces, sparse.stage_traces);
    assert_eq!(dense.recovery, sparse.recovery);
}

#[test]
fn longer_outages_replay_identically_within_the_stp_budget() {
    let baseline = run_det(11, &params(false, None));
    // dead_for must stay inside D_cv + L = 30 ms; sweep up to 25 ms.
    for dead_ms in [5i64, 15, 25] {
        let r = run_det(
            11,
            &params(false, Some(recovery(Duration::from_millis(dead_ms), 16))),
        );
        let rec = r.recovery.expect("recovery report");
        assert_eq!(
            r.decision_fingerprint(),
            baseline.decision_fingerprint(),
            "dead_for={dead_ms}ms"
        );
        assert_eq!(
            r.stage_traces, baseline.stage_traces,
            "dead_for={dead_ms}ms"
        );
        assert_eq!(rec.outage, Duration::from_millis(dead_ms));
        assert_eq!(rec.replay_mismatches, 0);
        assert_eq!(r.stp_violations, 0, "dead_for={dead_ms}ms");
    }
}

#[test]
#[should_panic(expected = "requires Coordination::Centralized")]
fn recovery_rejects_decentralized_coordination() {
    let p = DetParams {
        frames: 10,
        coordination: Coordination::Decentralized,
        recovery: Some(RecoveryParams {
            crash_after_frame: 5,
            ..RecoveryParams::default()
        }),
        ..DetParams::default()
    };
    let _ = run_det(0, &p);
}
