//! Server-side service skeletons with worker-pool method dispatch.
//!
//! "A skeleton is an abstract interface that a server needs to implement
//! in order to provide a service" (paper §II.A). Crucially, "by default,
//! the runtime environment maps each invocation to a different thread,
//! meaning the order in which the calls are handled is determined purely
//! by the thread scheduler" (§I) — nondeterminism source 1. The skeleton
//! therefore dispatches every incoming invocation through the component's
//! [`TaskPool`], whose sampled scheduling delay permutes execution order
//! run to run (seed to seed).

use dear_sim::{LatencyModel, SimRng, Simulation, TaskPool};
use dear_someip::{Binding, FrameBuf, ServiceInstance, SomeIpMessage};
use dear_time::Duration;
use std::cell::RefCell;
use std::fmt;
use std::rc::Rc;

/// A server-side skeleton for one provided service instance.
///
/// Created via
/// [`SoftwareComponent::skeleton`](crate::SoftwareComponent::skeleton).
#[derive(Clone)]
pub struct ServiceSkeleton {
    binding: Binding,
    pool: TaskPool,
    rng: Rc<RefCell<SimRng>>,
    service: u16,
    instance: u16,
}

impl fmt::Debug for ServiceSkeleton {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "ServiceSkeleton({:04x}:{:04x} on {})",
            self.service,
            self.instance,
            self.binding.node()
        )
    }
}

impl ServiceSkeleton {
    pub(crate) fn new(
        binding: Binding,
        pool: TaskPool,
        rng: SimRng,
        service: u16,
        instance: u16,
    ) -> Self {
        ServiceSkeleton {
            binding,
            pool,
            rng: Rc::new(RefCell::new(rng)),
            service,
            instance,
        }
    }

    /// The provided service instance.
    #[must_use]
    pub fn service_instance(&self) -> ServiceInstance {
        ServiceInstance::new(self.service, self.instance)
    }

    /// Starts offering the service via discovery.
    pub fn offer(&self, sim: &mut Simulation, ttl: Duration) {
        self.binding
            .offer(sim, ServiceInstance::new(self.service, self.instance), ttl);
    }

    /// Registers a method implementation.
    ///
    /// Each invocation is dispatched to the component's worker pool (with
    /// its sampled scheduling jitter), occupies a worker for a duration
    /// drawn from `exec_time`, and replies when that duration has elapsed.
    /// Handlers run mutually exclusive on the server state they capture —
    /// the *order* in which concurrent invocations run is what varies.
    pub fn provide_method<R: Into<FrameBuf>>(
        &self,
        method: u16,
        exec_time: LatencyModel,
        handler: impl FnMut(&mut Simulation, FrameBuf) -> R + 'static,
    ) {
        let pool = self.pool.clone();
        let rng = self.rng.clone();
        let handler = Rc::new(RefCell::new(handler));
        self.binding.register_method(
            self.service,
            method,
            move |sim, req: SomeIpMessage, responder| {
                let duration = exec_time.sample(&mut rng.borrow_mut());
                let handler = handler.clone();
                let payload = req.payload;
                let result: Rc<RefCell<Option<FrameBuf>>> = Rc::new(RefCell::new(None));
                let result2 = result.clone();
                pool.submit_with_completion(
                    sim,
                    duration,
                    move |sim| {
                        let out = (handler.borrow_mut())(sim, payload).into();
                        *result2.borrow_mut() = Some(out);
                    },
                    move |sim| {
                        let out = result.borrow_mut().take().expect("handler ran at start");
                        responder.reply(sim, out);
                    },
                );
            },
        );
    }

    /// Registers a method whose handler replies through an explicit
    /// responder (for servers that resolve their promise later).
    pub fn provide_method_deferred(
        &self,
        method: u16,
        handler: impl Fn(&mut Simulation, FrameBuf, dear_someip::Responder) + 'static,
    ) {
        self.binding
            .register_method(self.service, method, move |sim, req, responder| {
                handler(sim, req.payload, responder);
            });
    }

    /// Sends an event notification to all subscribers.
    pub fn notify(
        &self,
        sim: &mut Simulation,
        eventgroup: u16,
        event: u16,
        payload: impl Into<FrameBuf>,
    ) {
        self.binding.notify(
            sim,
            ServiceInstance::new(self.service, self.instance),
            eventgroup,
            event,
            payload,
        );
    }

    /// The underlying binding (used by the DEAR transactors).
    #[must_use]
    pub fn binding(&self) -> &Binding {
        &self.binding
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::swc::{SoftwareComponent, SwcConfig};
    use dear_sim::{LinkConfig, NetworkHandle, NodeId};
    use dear_someip::SdRegistry;
    use dear_time::Instant;

    fn world(seed: u64) -> (Simulation, NetworkHandle, SdRegistry) {
        let sim = Simulation::new(seed);
        let net = NetworkHandle::new(
            LinkConfig::ideal(Duration::from_micros(100)),
            sim.fork_rng("net"),
        );
        (sim, net, SdRegistry::new())
    }

    #[test]
    fn method_execution_occupies_worker_for_exec_time() {
        let (mut sim, net, sd) = world(0);
        let server = SoftwareComponent::launch(
            &sim,
            &net,
            &sd,
            SwcConfig::single_threaded("server", NodeId(1), 0x10),
        );
        let skel = server.skeleton(&sim, 0x42, 1);
        skel.provide_method(
            1,
            LatencyModel::constant(Duration::from_millis(5)),
            |_, p| p,
        );
        skel.offer(&mut sim, Duration::from_secs(100));

        let client = SoftwareComponent::launch(
            &sim,
            &net,
            &sd,
            SwcConfig::single_threaded("client", NodeId(2), 0x20),
        );
        let proxy = client.proxy(0x42, 1);
        let got = Rc::new(RefCell::new(None));
        let sink = got.clone();
        proxy
            .call(&mut sim, 1, vec![7])
            .then(&mut sim, move |sim, r| {
                *sink.borrow_mut() = Some((sim.now(), r.unwrap()));
            });
        sim.run_to_completion();
        let (at, v) = got.borrow().clone().unwrap();
        assert_eq!(v, vec![7]);
        // 100us there + 5ms exec + 100us back
        assert_eq!(at, Instant::from_micros(5200));
    }

    #[test]
    fn single_threaded_skeleton_serializes_in_arrival_order() {
        let (mut sim, net, sd) = world(1);
        let server = SoftwareComponent::launch(
            &sim,
            &net,
            &sd,
            SwcConfig::single_threaded("server", NodeId(1), 0x10),
        );
        let skel = server.skeleton(&sim, 0x42, 1);
        let order = Rc::new(RefCell::new(Vec::new()));
        let sink = order.clone();
        skel.provide_method(
            1,
            LatencyModel::constant(Duration::from_micros(10)),
            move |_, p| {
                sink.borrow_mut().push(p[0]);
                p
            },
        );
        skel.offer(&mut sim, Duration::from_secs(100));
        let client = SoftwareComponent::launch(
            &sim,
            &net,
            &sd,
            SwcConfig::single_threaded("client", NodeId(2), 0x20),
        );
        let proxy = client.proxy(0x42, 1);
        for i in 0..10u8 {
            let _ = proxy.call(&mut sim, 1, vec![i]);
        }
        sim.run_to_completion();
        assert_eq!(*order.borrow(), (0..10).collect::<Vec<u8>>());
    }

    #[test]
    fn multi_threaded_skeleton_permutes_execution_order_across_seeds() {
        fn run(seed: u64) -> Vec<u8> {
            let (mut sim, net, sd) = world(seed);
            let server = SoftwareComponent::launch(
                &sim,
                &net,
                &sd,
                SwcConfig::multi_threaded("server", NodeId(1), 0x10),
            );
            let skel = server.skeleton(&sim, 0x42, 1);
            let order = Rc::new(RefCell::new(Vec::new()));
            let sink = order.clone();
            skel.provide_method(
                1,
                LatencyModel::constant(Duration::from_micros(10)),
                move |_, p| {
                    sink.borrow_mut().push(p[0]);
                    p
                },
            );
            skel.offer(&mut sim, Duration::from_secs(100));
            let client = SoftwareComponent::launch(
                &sim,
                &net,
                &sd,
                SwcConfig::single_threaded("client", NodeId(2), 0x20),
            );
            let proxy = client.proxy(0x42, 1);
            for i in 0..6u8 {
                let _ = proxy.call(&mut sim, 1, vec![i]);
            }
            sim.run_to_completion();
            let v = order.borrow().clone();
            v
        }
        let baseline: Vec<u8> = (0..6).collect();
        let mut permuted = 0;
        for seed in 0..20 {
            if run(seed) != baseline {
                permuted += 1;
            }
            // Determinism per seed:
            assert_eq!(run(seed), run(seed));
        }
        assert!(
            permuted > 0,
            "thread-pool dispatch should permute execution order for some seeds"
        );
    }

    #[test]
    fn notifications_reach_buffered_subscribers() {
        let (mut sim, net, sd) = world(2);
        let server = SoftwareComponent::launch(
            &sim,
            &net,
            &sd,
            SwcConfig::single_threaded("server", NodeId(1), 0x10),
        );
        let skel = server.skeleton(&sim, 0x42, 1);
        skel.offer(&mut sim, Duration::from_secs(100));
        let client = SoftwareComponent::launch(
            &sim,
            &net,
            &sd,
            SwcConfig::single_threaded("client", NodeId(2), 0x20),
        );
        let proxy = client.proxy(0x42, 1);
        let buf = proxy.subscribe_buffered(1, 0x8001);
        skel.notify(&mut sim, 1, 0x8001, vec![1]);
        skel.notify(&mut sim, 1, 0x8001, vec![2]);
        sim.run_to_completion();
        // Two notifications, un-consumed in between: the second overwrote.
        assert_eq!(buf.take().map(|f| f.to_vec()), Some(vec![2]));
        assert_eq!(buf.stats().overwrites, 1);
    }
}
