//! Software components and execution management.
//!
//! An AP application is organized in software components (SWCs); "each
//! individual SWC can be considered a full program as it is mapped to a
//! process on the target platform during deployment" (paper §II.A). A
//! [`SoftwareComponent`] bundles the process's middleware binding and its
//! worker-thread pool; [`ExecutionManager`] launches SWCs and provides the
//! periodic OS callbacks the APD brake assistant is built on ("each SWC
//! sets up a periodic callback so that the OS triggers the SWC logic every
//! 50 ms", §IV.A).

use crate::proxy::ServiceProxy;
use crate::skeleton::ServiceSkeleton;
use dear_sim::{LatencyModel, NetworkHandle, NodeId, Simulation, TaskPool};
use dear_someip::{Binding, SdRegistry};
use dear_time::Duration;
use std::cell::Cell;
use std::fmt;
use std::rc::Rc;

/// Configuration for launching a software component.
#[derive(Debug, Clone)]
pub struct SwcConfig {
    /// Component name (diagnostics and traces).
    pub name: String,
    /// The platform node the component's process runs on.
    pub node: NodeId,
    /// SOME/IP client id used by the component's binding.
    pub client_id: u16,
    /// Worker threads in the component's request-dispatch pool.
    ///
    /// AP maps each incoming method invocation to a thread by default
    /// (nondeterminism source 1); set to `1` with zero jitter for the
    /// "single thread" workaround the paper mentions.
    pub workers: usize,
    /// Scheduling delay model for dispatched work items.
    pub dispatch_jitter: LatencyModel,
}

impl SwcConfig {
    /// A conventional multi-threaded component: 4 workers, up to 200 µs of
    /// dispatch jitter.
    #[must_use]
    pub fn multi_threaded(name: &str, node: NodeId, client_id: u16) -> Self {
        SwcConfig {
            name: name.into(),
            node,
            client_id,
            workers: 4,
            dispatch_jitter: LatencyModel::uniform(Duration::ZERO, Duration::from_micros(200)),
        }
    }

    /// A single-threaded component with deterministic (zero-jitter) FIFO
    /// dispatch.
    #[must_use]
    pub fn single_threaded(name: &str, node: NodeId, client_id: u16) -> Self {
        SwcConfig {
            name: name.into(),
            node,
            client_id,
            workers: 1,
            dispatch_jitter: LatencyModel::constant(Duration::ZERO),
        }
    }
}

/// A software component: one AP process with its binding and thread pool.
///
/// Cheap to clone; clones share the underlying process.
#[derive(Clone)]
pub struct SoftwareComponent {
    name: Rc<str>,
    node: NodeId,
    binding: Binding,
    pool: TaskPool,
}

impl fmt::Debug for SoftwareComponent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SoftwareComponent")
            .field("name", &self.name)
            .field("node", &self.node)
            .finish()
    }
}

impl SoftwareComponent {
    /// Launches a component on the given network/discovery domain.
    #[must_use]
    pub fn launch(
        sim: &Simulation,
        net: &NetworkHandle,
        sd: &SdRegistry,
        config: SwcConfig,
    ) -> Self {
        let pool = TaskPool::new(
            config.workers,
            config.dispatch_jitter.clone(),
            sim.fork_rng(&format!("swc-pool:{}", config.name)),
        );
        let binding = Binding::new(net, sd, config.node, config.client_id);
        SoftwareComponent {
            name: config.name.into(),
            node: config.node,
            binding,
            pool,
        }
    }

    /// The component's name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The node the component runs on.
    #[must_use]
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// The component's middleware binding.
    #[must_use]
    pub fn binding(&self) -> &Binding {
        &self.binding
    }

    /// The component's dispatch pool.
    #[must_use]
    pub fn pool(&self) -> &TaskPool {
        &self.pool
    }

    /// Creates a client-side proxy for a service.
    #[must_use]
    pub fn proxy(&self, service: u16, instance: u16) -> ServiceProxy {
        ServiceProxy::new(self.binding.clone(), service, instance)
    }

    /// Creates a server-side skeleton for a service this component
    /// provides.
    #[must_use]
    pub fn skeleton(&self, sim: &Simulation, service: u16, instance: u16) -> ServiceSkeleton {
        ServiceSkeleton::new(
            self.binding.clone(),
            self.pool.clone(),
            sim.fork_rng(&format!("skeleton:{}:{service:04x}", self.name)),
            service,
            instance,
        )
    }
}

/// Cancels a periodic task when dropped or explicitly.
#[derive(Debug, Clone, Default)]
pub struct PeriodicHandle(Rc<Cell<bool>>);

impl PeriodicHandle {
    /// Stops future activations.
    pub fn cancel(&self) {
        self.0.set(true);
    }

    /// Whether the task was cancelled.
    #[must_use]
    pub fn is_cancelled(&self) -> bool {
        self.0.get()
    }
}

/// Launches software components and schedules their periodic callbacks.
#[derive(Debug, Default)]
pub struct ExecutionManager {
    swcs: Vec<SoftwareComponent>,
}

impl ExecutionManager {
    /// Creates an empty execution manager.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Launches and registers a component.
    pub fn launch(
        &mut self,
        sim: &Simulation,
        net: &NetworkHandle,
        sd: &SdRegistry,
        config: SwcConfig,
    ) -> SoftwareComponent {
        let swc = SoftwareComponent::launch(sim, net, sd, config);
        self.swcs.push(swc.clone());
        swc
    }

    /// The launched components.
    #[must_use]
    pub fn components(&self) -> &[SoftwareComponent] {
        &self.swcs
    }

    /// Schedules `callback` every `period`, first at `offset` from now.
    ///
    /// This is the OS-level periodic trigger of the APD design. The phase
    /// `offset` "depends on when SWCs are started and is difficult to
    /// control" (§IV.A) — experiment harnesses randomize it per instance.
    pub fn schedule_periodic(
        sim: &mut Simulation,
        offset: Duration,
        period: Duration,
        callback: impl FnMut(&mut Simulation) + 'static,
    ) -> PeriodicHandle {
        assert!(period > Duration::ZERO, "period must be positive");
        let handle = PeriodicHandle::default();
        let h = handle.clone();
        fn tick(
            sim: &mut Simulation,
            period: Duration,
            mut callback: impl FnMut(&mut Simulation) + 'static,
            h: PeriodicHandle,
        ) {
            if h.is_cancelled() {
                return;
            }
            callback(sim);
            sim.schedule_in(period, move |sim| tick(sim, period, callback, h));
        }
        sim.schedule_in(offset, move |sim| tick(sim, period, callback, h));
        handle
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dear_sim::LinkConfig;
    use dear_time::Instant;
    use std::cell::RefCell;

    fn setup() -> (Simulation, NetworkHandle, SdRegistry) {
        let sim = Simulation::new(0);
        let net = NetworkHandle::new(LinkConfig::default(), sim.fork_rng("net"));
        (sim, net, SdRegistry::new())
    }

    #[test]
    fn periodic_callback_fires_with_offset_and_period() {
        let (mut sim, _net, _sd) = setup();
        let hits = Rc::new(RefCell::new(Vec::new()));
        let sink = hits.clone();
        ExecutionManager::schedule_periodic(
            &mut sim,
            Duration::from_millis(3),
            Duration::from_millis(10),
            move |sim| sink.borrow_mut().push(sim.now()),
        );
        sim.run_until(Instant::from_millis(35));
        assert_eq!(
            *hits.borrow(),
            vec![
                Instant::from_millis(3),
                Instant::from_millis(13),
                Instant::from_millis(23),
                Instant::from_millis(33),
            ]
        );
    }

    #[test]
    fn cancel_stops_periodic_task() {
        let (mut sim, _net, _sd) = setup();
        let hits = Rc::new(RefCell::new(0u32));
        let sink = hits.clone();
        let handle = ExecutionManager::schedule_periodic(
            &mut sim,
            Duration::ZERO,
            Duration::from_millis(10),
            move |_| *sink.borrow_mut() += 1,
        );
        let h = handle.clone();
        sim.schedule_at(Instant::from_millis(25), move |_| h.cancel());
        sim.run_until(Instant::from_millis(100));
        assert_eq!(*hits.borrow(), 3); // 0, 10, 20ms
        assert!(handle.is_cancelled());
    }

    #[test]
    fn launch_registers_components() {
        let (sim, net, sd) = setup();
        let mut em = ExecutionManager::new();
        let a = em.launch(
            &sim,
            &net,
            &sd,
            SwcConfig::multi_threaded("a", NodeId(1), 0x10),
        );
        let _b = em.launch(
            &sim,
            &net,
            &sd,
            SwcConfig::single_threaded("b", NodeId(2), 0x20),
        );
        assert_eq!(em.components().len(), 2);
        assert_eq!(a.name(), "a");
        assert_eq!(a.node(), NodeId(1));
        assert_eq!(a.pool().worker_count(), 4);
        assert_eq!(em.components()[1].pool().worker_count(), 1);
    }
}
