//! Client-side service proxies and one-slot event buffers.
//!
//! A proxy "is an object that a client receives when requesting a service.
//! Client and server communicate directly through the proxy and skeleton
//! objects" (paper §II.A). Methods return futures; event subscriptions
//! deliver into a **one-slot input buffer** exactly like the APD brake
//! assistant ("the corresponding event handler stores the data in a
//! one-slot input buffer", §IV.A) — the buffer counts overwrites, which is
//! how the Figure 5 instrumentation detects dropped frames.

use crate::future::{promise, SimFuture};
use dear_sim::Simulation;
use dear_someip::{
    Binding, BindingError, FrameBuf, MessageType, ReturnCode, ServiceInstance, SomeIpMessage,
};
use std::cell::RefCell;
use std::error::Error;
use std::fmt;
use std::rc::Rc;

/// Errors surfaced by proxy method calls.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MethodError {
    /// Service discovery found no provider.
    ServiceNotFound,
    /// The server answered with an error return code.
    Remote(ReturnCode),
}

impl fmt::Display for MethodError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MethodError::ServiceNotFound => write!(f, "service not found"),
            MethodError::Remote(code) => write!(f, "server returned error {code:?}"),
        }
    }
}

impl Error for MethodError {}

/// Result type of proxy method calls.
///
/// A successful call yields the response payload as a [`FrameBuf`] view
/// into the received frame (read in place, no copy).
pub type MethodResult = Result<FrameBuf, MethodError>;

/// Statistics of a one-slot event buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BufferStats {
    /// Values written into the slot.
    pub writes: u64,
    /// Writes that overwrote an unread value (a *dropped* message).
    pub overwrites: u64,
    /// Successful takes.
    pub reads: u64,
    /// Takes that found the slot empty.
    pub empty_reads: u64,
}

#[derive(Default)]
struct SlotInner {
    value: Option<FrameBuf>,
    stats: BufferStats,
}

/// A one-slot event input buffer (latest-value semantics).
///
/// New arrivals overwrite unread data — the exact mechanism behind the
/// frame drops of the paper's Figure 5.
#[derive(Clone, Default)]
pub struct EventBuffer(Rc<RefCell<SlotInner>>);

impl fmt::Debug for EventBuffer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let inner = self.0.borrow();
        f.debug_struct("EventBuffer")
            .field("occupied", &inner.value.is_some())
            .field("stats", &inner.stats)
            .finish()
    }
}

impl EventBuffer {
    /// Creates an empty buffer.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Stores a value, overwriting (and counting as dropped) any unread
    /// predecessor.
    pub fn put(&self, value: impl Into<FrameBuf>) {
        let mut inner = self.0.borrow_mut();
        if inner.value.is_some() {
            inner.stats.overwrites += 1;
        }
        inner.stats.writes += 1;
        inner.value = Some(value.into());
    }

    /// Takes the current value, leaving the slot empty.
    ///
    /// An empty slot is counted (the APD components "silently stop
    /// computation" in that case).
    pub fn take(&self) -> Option<FrameBuf> {
        let mut inner = self.0.borrow_mut();
        match inner.value.take() {
            Some(v) => {
                inner.stats.reads += 1;
                Some(v)
            }
            None => {
                inner.stats.empty_reads += 1;
                None
            }
        }
    }

    /// Reads without consuming (shares, does not copy).
    #[must_use]
    pub fn peek(&self) -> Option<FrameBuf> {
        self.0.borrow().value.clone()
    }

    /// Buffer statistics (drop instrumentation).
    #[must_use]
    pub fn stats(&self) -> BufferStats {
        self.0.borrow().stats
    }
}

/// A client-side proxy for one service instance.
///
/// Created via [`SoftwareComponent::proxy`](crate::SoftwareComponent::proxy).
#[derive(Clone)]
pub struct ServiceProxy {
    binding: Binding,
    service: u16,
    instance: u16,
}

impl fmt::Debug for ServiceProxy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "ServiceProxy({:04x}:{:04x} via {})",
            self.service,
            self.instance,
            self.binding.node()
        )
    }
}

impl ServiceProxy {
    pub(crate) fn new(binding: Binding, service: u16, instance: u16) -> Self {
        ServiceProxy {
            binding,
            service,
            instance,
        }
    }

    /// The service id this proxy addresses.
    #[must_use]
    pub fn service(&self) -> u16 {
        self.service
    }

    /// Invokes a method, returning a future for the result.
    ///
    /// The call is non-blocking: it returns immediately, and the future
    /// resolves when the response message arrives. This is precisely the
    /// Figure 1 client pattern, where issuing several calls without
    /// awaiting their futures surrenders the execution order to the
    /// server's thread pool.
    pub fn call(
        &self,
        sim: &mut Simulation,
        method: u16,
        payload: impl Into<FrameBuf>,
    ) -> SimFuture<MethodResult> {
        let (p, f) = promise();
        let result = self.binding.call(
            sim,
            self.service,
            self.instance,
            method,
            payload,
            move |sim, resp: SomeIpMessage| {
                let outcome = if resp.message_type == MessageType::Error
                    || resp.return_code != ReturnCode::Ok
                {
                    Err(MethodError::Remote(resp.return_code))
                } else {
                    Ok(resp.payload)
                };
                p.resolve(sim, outcome);
            },
        );
        match result {
            Ok(_) => f,
            Err(BindingError::ServiceNotFound { .. }) => {
                // The promise moved into the (never-to-fire) callback; a
                // fresh resolved future reports the discovery failure.
                crate::future::ready(Err(MethodError::ServiceNotFound))
            }
        }
    }

    /// Invokes a fire-and-forget method.
    ///
    /// # Errors
    ///
    /// Returns [`MethodError::ServiceNotFound`] if discovery fails.
    pub fn call_no_return(
        &self,
        sim: &mut Simulation,
        method: u16,
        payload: impl Into<FrameBuf>,
    ) -> Result<(), MethodError> {
        self.binding
            .call_no_return(sim, self.service, self.instance, method, payload)
            .map_err(|_| MethodError::ServiceNotFound)
    }

    /// Subscribes to an event, delivering into a fresh one-slot buffer.
    ///
    /// Returns the buffer; the periodic SWC logic polls it with
    /// [`EventBuffer::take`].
    #[must_use]
    pub fn subscribe_buffered(&self, eventgroup: u16, event: u16) -> EventBuffer {
        let buffer = EventBuffer::new();
        let sink = buffer.clone();
        self.binding.subscribe(
            ServiceInstance::new(self.service, self.instance),
            eventgroup,
        );
        self.binding
            .on_event(self.service, event, move |_sim, msg| {
                sink.put(msg.payload);
            });
        buffer
    }

    /// Subscribes to an event with a custom handler (no buffer).
    pub fn subscribe(
        &self,
        eventgroup: u16,
        event: u16,
        handler: impl Fn(&mut Simulation, FrameBuf) + 'static,
    ) {
        self.binding.subscribe(
            ServiceInstance::new(self.service, self.instance),
            eventgroup,
        );
        self.binding.on_event(self.service, event, move |sim, msg| {
            handler(sim, msg.payload)
        });
    }

    /// The underlying binding (used by the DEAR transactors).
    #[must_use]
    pub fn binding(&self) -> &Binding {
        &self.binding
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buffer_counts_overwrites_and_empty_reads() {
        let buf = EventBuffer::new();
        assert_eq!(buf.take().map(|f| f.to_vec()), None);
        buf.put(vec![1]);
        buf.put(vec![2]); // overwrites unread 1
        assert_eq!(buf.take().map(|f| f.to_vec()), Some(vec![2]));
        assert_eq!(buf.take().map(|f| f.to_vec()), None);
        buf.put(vec![3]);
        assert_eq!(buf.peek().map(|f| f.to_vec()), Some(vec![3]));
        assert_eq!(buf.take().map(|f| f.to_vec()), Some(vec![3]));
        let stats = buf.stats();
        assert_eq!(stats.writes, 3);
        assert_eq!(stats.overwrites, 1);
        assert_eq!(stats.reads, 2);
        assert_eq!(stats.empty_reads, 2);
    }

    #[test]
    fn buffer_clones_share_state() {
        let buf = EventBuffer::new();
        let other = buf.clone();
        buf.put(vec![5]);
        assert_eq!(other.take().map(|f| f.to_vec()), Some(vec![5]));
        assert_eq!(buf.stats().reads, 1);
    }
}
