//! Service fields: get/set methods plus a change-notification event.
//!
//! "Fields are state variables exposed by the server. Each field may
//! provide a get method, a set method and an event that indicates state
//! changes" (paper §II.A). A field is therefore implemented as a
//! composition of two methods and one event — and, on the DEAR side,
//! "interaction with fields requires the use of one event and two method
//! transactors" (§III.B).

use crate::future::SimFuture;
use crate::proxy::{EventBuffer, MethodResult, ServiceProxy};
use crate::skeleton::ServiceSkeleton;
use dear_sim::{LatencyModel, Simulation};
use dear_someip::FrameBuf;
use dear_time::Duration;
use std::cell::RefCell;
use std::fmt;
use std::rc::Rc;

/// The wire identifiers making up one field.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FieldIds {
    /// Method id of the getter.
    pub get_method: u16,
    /// Method id of the setter.
    pub set_method: u16,
    /// Event id of the change notifier.
    pub notifier_event: u16,
    /// Eventgroup carrying the notifier.
    pub eventgroup: u16,
}

impl FieldIds {
    /// Conventional layout: getter `base`, setter `base+1`, notifier event
    /// `0x8000 | base`, eventgroup `base`.
    #[must_use]
    pub const fn conventional(base: u16) -> Self {
        FieldIds {
            get_method: base,
            set_method: base + 1,
            notifier_event: 0x8000 | base,
            eventgroup: base,
        }
    }
}

/// Server-side field: owns the value, serves get/set, notifies changes.
#[derive(Clone)]
pub struct FieldSkeleton {
    skeleton: ServiceSkeleton,
    ids: FieldIds,
    value: Rc<RefCell<FrameBuf>>,
}

impl fmt::Debug for FieldSkeleton {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "FieldSkeleton({:?})", self.ids)
    }
}

impl FieldSkeleton {
    /// Attaches a field to a skeleton: registers the get/set methods and
    /// stores the initial value.
    ///
    /// `exec_time` models the server-side processing time of get/set
    /// handling (dispatched through the component's worker pool like any
    /// other method — fields inherit nondeterminism source 1).
    #[must_use]
    pub fn provide(
        skeleton: &ServiceSkeleton,
        ids: FieldIds,
        initial: impl Into<FrameBuf>,
        exec_time: LatencyModel,
    ) -> Self {
        let value = Rc::new(RefCell::new(initial.into()));

        let v = value.clone();
        skeleton.provide_method(ids.get_method, exec_time.clone(), move |_sim, _req| {
            v.borrow().clone()
        });

        let v = value.clone();
        let notifier = skeleton.clone();
        skeleton.provide_method(ids.set_method, exec_time, move |sim, new_value| {
            *v.borrow_mut() = new_value.clone();
            notifier.notify(sim, ids.eventgroup, ids.notifier_event, new_value.clone());
            new_value
        });

        FieldSkeleton {
            skeleton: skeleton.clone(),
            ids,
            value,
        }
    }

    /// Reads the current value (server-local access; shares, no copy).
    #[must_use]
    pub fn value(&self) -> FrameBuf {
        self.value.borrow().clone()
    }

    /// Server-side update: stores and notifies subscribers.
    pub fn update(&self, sim: &mut Simulation, new_value: impl Into<FrameBuf>) {
        let new_value = new_value.into();
        *self.value.borrow_mut() = new_value.clone();
        self.skeleton
            .notify(sim, self.ids.eventgroup, self.ids.notifier_event, new_value);
    }

    /// The field's wire identifiers.
    #[must_use]
    pub fn ids(&self) -> FieldIds {
        self.ids
    }
}

/// Client-side field access.
#[derive(Clone)]
pub struct FieldProxy {
    proxy: ServiceProxy,
    ids: FieldIds,
}

impl fmt::Debug for FieldProxy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "FieldProxy({:?})", self.ids)
    }
}

impl FieldProxy {
    /// Wraps a service proxy for field access.
    #[must_use]
    pub fn new(proxy: ServiceProxy, ids: FieldIds) -> Self {
        FieldProxy { proxy, ids }
    }

    /// Calls the field getter.
    pub fn get(&self, sim: &mut Simulation) -> SimFuture<MethodResult> {
        self.proxy.call(sim, self.ids.get_method, FrameBuf::new())
    }

    /// Calls the field setter.
    pub fn set(&self, sim: &mut Simulation, value: impl Into<FrameBuf>) -> SimFuture<MethodResult> {
        self.proxy.call(sim, self.ids.set_method, value)
    }

    /// Subscribes to change notifications into a one-slot buffer.
    #[must_use]
    pub fn subscribe_updates(&self) -> EventBuffer {
        self.proxy
            .subscribe_buffered(self.ids.eventgroup, self.ids.notifier_event)
    }

    /// The field's wire identifiers.
    #[must_use]
    pub fn ids(&self) -> FieldIds {
        self.ids
    }
}

/// Default TTL used by examples and tests when offering field services.
pub const DEFAULT_FIELD_TTL: Duration = Duration::from_secs(3600);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::swc::{SoftwareComponent, SwcConfig};
    use dear_sim::{LinkConfig, NetworkHandle, NodeId};
    use dear_someip::SdRegistry;

    fn world() -> (Simulation, NetworkHandle, SdRegistry) {
        let sim = Simulation::new(0);
        let net = NetworkHandle::new(
            LinkConfig::ideal(Duration::from_micros(100)),
            sim.fork_rng("net"),
        );
        (sim, net, SdRegistry::new())
    }

    #[test]
    fn field_get_set_notify_roundtrip() {
        let (mut sim, net, sd) = world();
        let server = SoftwareComponent::launch(
            &sim,
            &net,
            &sd,
            SwcConfig::single_threaded("server", NodeId(1), 0x10),
        );
        let skel = server.skeleton(&sim, 0x42, 1);
        let ids = FieldIds::conventional(0x100);
        let field = FieldSkeleton::provide(
            &skel,
            ids,
            vec![0],
            LatencyModel::constant(Duration::from_micros(50)),
        );
        skel.offer(&mut sim, DEFAULT_FIELD_TTL);

        let client = SoftwareComponent::launch(
            &sim,
            &net,
            &sd,
            SwcConfig::single_threaded("client", NodeId(2), 0x20),
        );
        let fp = FieldProxy::new(client.proxy(0x42, 1), ids);
        let updates = fp.subscribe_updates();

        let got = Rc::new(RefCell::new(Vec::new()));
        let sink = got.clone();
        fp.set(&mut sim, vec![9]).then(&mut sim, move |_s, r| {
            sink.borrow_mut().push(("set", r.unwrap().to_vec()));
        });
        sim.run_to_completion();
        assert_eq!(field.value(), vec![9]);
        assert_eq!(
            updates.take().map(|f| f.to_vec()),
            Some(vec![9]),
            "notifier fired"
        );

        let sink = got.clone();
        fp.get(&mut sim).then(&mut sim, move |_s, r| {
            sink.borrow_mut().push(("get", r.unwrap().to_vec()));
        });
        sim.run_to_completion();
        assert_eq!(*got.borrow(), vec![("set", vec![9]), ("get", vec![9])]);
    }

    #[test]
    fn server_side_update_notifies_without_set() {
        let (mut sim, net, sd) = world();
        let server = SoftwareComponent::launch(
            &sim,
            &net,
            &sd,
            SwcConfig::single_threaded("server", NodeId(1), 0x10),
        );
        let skel = server.skeleton(&sim, 0x42, 1);
        let ids = FieldIds::conventional(0x200);
        let field =
            FieldSkeleton::provide(&skel, ids, vec![1], LatencyModel::constant(Duration::ZERO));
        skel.offer(&mut sim, DEFAULT_FIELD_TTL);
        let client = SoftwareComponent::launch(
            &sim,
            &net,
            &sd,
            SwcConfig::single_threaded("client", NodeId(2), 0x20),
        );
        let fp = FieldProxy::new(client.proxy(0x42, 1), ids);
        let updates = fp.subscribe_updates();
        field.update(&mut sim, vec![5]);
        sim.run_to_completion();
        assert_eq!(updates.take().map(|f| f.to_vec()), Some(vec![5]));
        assert_eq!(field.ids(), ids);
    }

    #[test]
    fn conventional_ids_layout() {
        let ids = FieldIds::conventional(0x30);
        assert_eq!(ids.get_method, 0x30);
        assert_eq!(ids.set_method, 0x31);
        assert_eq!(ids.notifier_event, 0x8030);
        assert_eq!(ids.eventgroup, 0x30);
    }
}
