//! # dear-ara — the AUTOSAR Adaptive runtime layer (simulated)
//!
//! This crate rebuilds the `ara::com`-style runtime that the paper's §II
//! describes, on top of `dear-someip` and `dear-sim`:
//!
//! * [`SoftwareComponent`] / [`ExecutionManager`] — SWCs as processes with
//!   worker pools and the periodic OS callbacks the APD uses;
//! * [`ServiceProxy`] — client-side method calls returning [`SimFuture`]s,
//!   and event subscriptions delivered into one-slot [`EventBuffer`]s
//!   (latest-value semantics, with drop instrumentation);
//! * [`ServiceSkeleton`] — server-side method dispatch through the
//!   component's thread pool: **nondeterminism source 1**, "the runtime
//!   environment maps each invocation to a different thread";
//! * [`FieldSkeleton`] / [`FieldProxy`] — fields as get + set + notifier;
//! * [`DeterministicClient`] — AP's task-based intra-SWC determinism
//!   provision, which the paper notes cannot fix cross-SWC
//!   nondeterminism.
//!
//! The Figure 1 client/server of the paper is expressed directly against
//! this API (see `dear-apd::calculator`), and the nondeterministic brake
//! assistant of Figure 4/5 is built from these parts.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod detclient;
mod field;
pub mod future;
mod proxy;
mod skeleton;
mod swc;

pub use detclient::{CycleCtx, DeterministicClient};
pub use field::{FieldIds, FieldProxy, FieldSkeleton, DEFAULT_FIELD_TTL};
pub use future::{SimFuture, SimPromise};
pub use proxy::{BufferStats, EventBuffer, MethodError, MethodResult, ServiceProxy};
pub use skeleton::ServiceSkeleton;
pub use swc::{ExecutionManager, PeriodicHandle, SoftwareComponent, SwcConfig};
