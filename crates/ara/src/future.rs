//! Futures/promises in simulated time.
//!
//! AP method calls return futures ("the implementation of the service
//! method is expected to return a future. As soon as the corresponding
//! promise is fulfilled, the server sends a message back to the client",
//! paper §II.A). [`SimFuture`] is the simulation-side equivalent: a
//! one-shot value container whose continuation runs inside the
//! discrete-event simulation when the paired [`SimPromise`] resolves.

use dear_sim::Simulation;
use std::cell::RefCell;
use std::fmt;
use std::rc::Rc;

type Callback<T> = Box<dyn FnOnce(&mut Simulation, T)>;

enum State<T> {
    Pending(Option<Callback<T>>),
    Resolved(Option<T>),
    Consumed,
}

/// The receiving end of a one-shot value.
///
/// # Examples
///
/// ```
/// use dear_ara::future;
/// use dear_sim::Simulation;
/// use dear_time::Duration;
/// use std::cell::RefCell;
/// use std::rc::Rc;
///
/// let mut sim = Simulation::new(0);
/// let (promise, fut) = future::promise::<u32>();
///
/// let got = Rc::new(RefCell::new(None));
/// let sink = got.clone();
/// fut.then(&mut sim, move |_sim, v| *sink.borrow_mut() = Some(v));
///
/// sim.schedule_in(Duration::from_millis(1), move |sim| promise.resolve(sim, 7));
/// sim.run_to_completion();
/// assert_eq!(*got.borrow(), Some(7));
/// ```
pub struct SimFuture<T>(Rc<RefCell<State<T>>>);

impl<T> fmt::Debug for SimFuture<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let state = match &*self.0.borrow() {
            State::Pending(_) => "pending",
            State::Resolved(_) => "resolved",
            State::Consumed => "consumed",
        };
        write!(f, "SimFuture({state})")
    }
}

/// The resolving end of a one-shot value.
pub struct SimPromise<T>(Rc<RefCell<State<T>>>);

impl<T> fmt::Debug for SimPromise<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SimPromise")
    }
}

/// Creates a connected promise/future pair.
#[must_use]
pub fn promise<T>() -> (SimPromise<T>, SimFuture<T>) {
    let cell = Rc::new(RefCell::new(State::Pending(None)));
    (SimPromise(cell.clone()), SimFuture(cell))
}

/// Creates an already-resolved future.
#[must_use]
pub fn ready<T>(value: T) -> SimFuture<T> {
    SimFuture(Rc::new(RefCell::new(State::Resolved(Some(value)))))
}

impl<T: 'static> SimFuture<T> {
    /// Registers the continuation. If the value is already available, the
    /// continuation runs immediately (synchronously).
    ///
    /// # Panics
    ///
    /// Panics if a continuation was already registered or the value was
    /// already consumed — futures are one-shot.
    pub fn then(self, sim: &mut Simulation, f: impl FnOnce(&mut Simulation, T) + 'static) {
        let mut f: Option<Callback<T>> = Some(Box::new(f));
        let immediate = {
            let mut state = self.0.borrow_mut();
            match &mut *state {
                State::Pending(cb) => {
                    assert!(cb.is_none(), "future continuation already registered");
                    *cb = f.take();
                    None
                }
                State::Resolved(v) => {
                    let v = v.take().expect("resolved value missing");
                    *state = State::Consumed;
                    Some(v)
                }
                State::Consumed => panic!("future already consumed"),
            }
        };
        if let Some(v) = immediate {
            (f.take().expect("callback retained"))(sim, v);
        }
    }

    /// Returns `true` once the promise has resolved (and the value has not
    /// yet been delivered to a continuation).
    #[must_use]
    pub fn is_resolved(&self) -> bool {
        matches!(&*self.0.borrow(), State::Resolved(_))
    }

    /// Takes the value if resolved; `None` while pending.
    ///
    /// # Panics
    ///
    /// Panics if the value was already consumed.
    pub fn try_take(&self) -> Option<T> {
        let mut state = self.0.borrow_mut();
        match &mut *state {
            State::Pending(_) => None,
            State::Resolved(v) => {
                let v = v.take().expect("resolved value missing");
                *state = State::Consumed;
                Some(v)
            }
            State::Consumed => panic!("future already consumed"),
        }
    }
}

impl<T: 'static> SimPromise<T> {
    /// Resolves the promise; a registered continuation runs immediately.
    ///
    /// # Panics
    ///
    /// Panics if the promise was already resolved.
    pub fn resolve(self, sim: &mut Simulation, value: T) {
        let cb = {
            let mut state = self.0.borrow_mut();
            match &mut *state {
                State::Pending(cb) => {
                    let cb = cb.take();
                    if cb.is_some() {
                        *state = State::Consumed;
                    } else {
                        *state = State::Resolved(Some(value));
                        return;
                    }
                    cb
                }
                _ => panic!("promise already resolved"),
            }
        };
        if let Some(cb) = cb {
            cb(sim, value);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dear_time::Duration;

    #[test]
    fn resolve_after_then() {
        let mut sim = Simulation::new(0);
        let (p, f) = promise::<u8>();
        let got = Rc::new(RefCell::new(None));
        let sink = got.clone();
        f.then(&mut sim, move |_s, v| *sink.borrow_mut() = Some(v));
        sim.schedule_in(Duration::from_millis(1), move |sim| p.resolve(sim, 9));
        sim.run_to_completion();
        assert_eq!(*got.borrow(), Some(9));
    }

    #[test]
    fn then_after_resolve_runs_immediately() {
        let mut sim = Simulation::new(0);
        let (p, f) = promise::<u8>();
        p.resolve(&mut sim, 4);
        assert!(f.is_resolved());
        let got = Rc::new(RefCell::new(None));
        let sink = got.clone();
        f.then(&mut sim, move |_s, v| *sink.borrow_mut() = Some(v));
        assert_eq!(*got.borrow(), Some(4));
    }

    #[test]
    fn ready_future_is_resolved() {
        let f = ready(1u8);
        assert!(f.is_resolved());
        assert_eq!(f.try_take(), Some(1));
    }

    #[test]
    fn try_take_pending_returns_none() {
        let (_p, f) = promise::<u8>();
        assert_eq!(f.try_take(), None);
        assert!(!f.is_resolved());
    }

    #[test]
    #[should_panic(expected = "already consumed")]
    fn double_take_panics() {
        let f = ready(1u8);
        assert_eq!(f.try_take(), Some(1));
        let _ = f.try_take();
    }

    #[test]
    #[should_panic(expected = "already resolved")]
    fn double_resolve_panics() {
        let mut sim = Simulation::new(0);
        let (p, f) = promise::<u8>();
        // Keep a second handle to the promise state via the future.
        let p2 = SimPromise(f.0.clone());
        p.resolve(&mut sim, 1);
        p2.resolve(&mut sim, 2);
    }
}
