//! The AP "deterministic client" (execution-management spec, cited as
//! \[14\] in the paper).
//!
//! AP's one provision for determinism is a task-based intra-SWC execution
//! model: a fixed table of tasks runs in a fixed order once per activation
//! cycle, with cycle-stable pseudo-randomness. The paper's §II.B points
//! out its limits: "because its scope is limited to individual SWCs, the
//! solution only addresses the first source of nondeterminism" — the
//! integration tests demonstrate exactly that (deterministic task order
//! inside the SWC, nondeterministic cross-SWC communication).

use dear_sim::{SimRng, Simulation};
use dear_time::Duration;
use std::cell::RefCell;
use std::fmt;
use std::rc::Rc;

/// Per-activation context handed to deterministic-client tasks.
pub struct CycleCtx<'a> {
    /// The running simulation.
    pub sim: &'a mut Simulation,
    /// The activation (cycle) counter, starting at 0.
    pub cycle: u64,
    rng: &'a mut SimRng,
}

impl fmt::Debug for CycleCtx<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "CycleCtx(cycle={})", self.cycle)
    }
}

impl CycleCtx<'_> {
    /// Cycle-stable random source: the AP deterministic client guarantees
    /// that random numbers drawn within a cycle are reproducible across
    /// redundant executions of the same cycle.
    pub fn rng(&mut self) -> &mut SimRng {
        self.rng
    }
}

type Task = (String, Box<dyn FnMut(&mut CycleCtx<'_>)>);

struct DetClientInner {
    name: String,
    tasks: Vec<Task>,
    cycle: u64,
    seed_stream: SimRng,
}

/// A task-based deterministic execution client for one SWC.
///
/// # Examples
///
/// ```
/// use dear_ara::DeterministicClient;
/// use dear_sim::Simulation;
/// use dear_time::Duration;
/// use std::cell::RefCell;
/// use std::rc::Rc;
///
/// let mut sim = Simulation::new(3);
/// let client = DeterministicClient::new("worker", sim.fork_rng("det"));
/// let log = Rc::new(RefCell::new(Vec::new()));
/// for name in ["read", "compute", "write"] {
///     let log = log.clone();
///     client.register_task(name, move |ctx| {
///         log.borrow_mut().push(format!("{name}@{}", ctx.cycle));
///     });
/// }
/// client.start(&mut sim, Duration::ZERO, Duration::from_millis(10));
/// sim.run_until(dear_time::Instant::from_millis(15));
/// assert_eq!(
///     *log.borrow(),
///     vec!["read@0", "compute@0", "write@0", "read@1", "compute@1", "write@1"]
/// );
/// ```
#[derive(Clone)]
pub struct DeterministicClient(Rc<RefCell<DetClientInner>>);

impl fmt::Debug for DeterministicClient {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let inner = self.0.borrow();
        f.debug_struct("DeterministicClient")
            .field("name", &inner.name)
            .field("tasks", &inner.tasks.len())
            .field("cycle", &inner.cycle)
            .finish()
    }
}

impl DeterministicClient {
    /// Creates a client with the given seed stream.
    #[must_use]
    pub fn new(name: &str, seed_stream: SimRng) -> Self {
        DeterministicClient(Rc::new(RefCell::new(DetClientInner {
            name: name.into(),
            tasks: Vec::new(),
            cycle: 0,
            seed_stream,
        })))
    }

    /// Appends a task to the fixed execution table.
    pub fn register_task(&self, name: &str, task: impl FnMut(&mut CycleCtx<'_>) + 'static) {
        self.0
            .borrow_mut()
            .tasks
            .push((name.into(), Box::new(task)));
    }

    /// Runs one activation cycle immediately: all tasks, in registration
    /// order, with a cycle-stable RNG.
    pub fn activate(&self, sim: &mut Simulation) {
        // Move tasks out so task bodies may re-borrow the client.
        let (mut tasks, cycle, mut rng) = {
            let mut inner = self.0.borrow_mut();
            let cycle = inner.cycle;
            inner.cycle += 1;
            let rng = inner.seed_stream.fork_indexed("cycle", cycle);
            (std::mem::take(&mut inner.tasks), cycle, rng)
        };
        for (_name, task) in &mut tasks {
            let mut ctx = CycleCtx {
                sim,
                cycle,
                rng: &mut rng,
            };
            task(&mut ctx);
        }
        let mut inner = self.0.borrow_mut();
        // Tasks registered during activation (rare) are appended after.
        let appended = std::mem::take(&mut inner.tasks);
        inner.tasks = tasks;
        inner.tasks.extend(appended);
    }

    /// Schedules periodic activation: first at `offset`, then every
    /// `period`.
    pub fn start(&self, sim: &mut Simulation, offset: Duration, period: Duration) {
        assert!(period > Duration::ZERO, "period must be positive");
        let client = self.clone();
        fn tick(sim: &mut Simulation, client: DeterministicClient, period: Duration) {
            client.activate(sim);
            let next = client.clone();
            sim.schedule_in(period, move |sim| tick(sim, next, period));
        }
        sim.schedule_in(offset, move |sim| tick(sim, client, period));
    }

    /// Number of completed activation cycles.
    #[must_use]
    pub fn cycles(&self) -> u64 {
        self.0.borrow().cycle
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dear_time::Instant;

    #[test]
    fn tasks_run_in_registration_order_every_cycle() {
        let mut sim = Simulation::new(0);
        let client = DeterministicClient::new("c", sim.fork_rng("det"));
        let log = Rc::new(RefCell::new(Vec::new()));
        for i in 0..4 {
            let log = log.clone();
            client.register_task(&format!("t{i}"), move |ctx| {
                log.borrow_mut().push((ctx.cycle, i));
            });
        }
        client.activate(&mut sim);
        client.activate(&mut sim);
        assert_eq!(
            *log.borrow(),
            vec![
                (0, 0),
                (0, 1),
                (0, 2),
                (0, 3),
                (1, 0),
                (1, 1),
                (1, 2),
                (1, 3)
            ]
        );
        assert_eq!(client.cycles(), 2);
    }

    #[test]
    fn cycle_rng_is_stable_per_cycle_and_varies_across_cycles() {
        let mut sim = Simulation::new(7);
        let client_a = DeterministicClient::new("a", sim.fork_rng("det"));
        let draws_a = Rc::new(RefCell::new(Vec::new()));
        let sink = draws_a.clone();
        client_a.register_task("draw", move |ctx| {
            sink.borrow_mut().push(ctx.rng().next_u64());
        });
        client_a.activate(&mut sim);
        client_a.activate(&mut sim);

        // A second client with the same seed stream reproduces the draws.
        let client_b = DeterministicClient::new("b", sim.fork_rng("det"));
        let draws_b = Rc::new(RefCell::new(Vec::new()));
        let sink = draws_b.clone();
        client_b.register_task("draw", move |ctx| {
            sink.borrow_mut().push(ctx.rng().next_u64());
        });
        client_b.activate(&mut sim);
        client_b.activate(&mut sim);

        assert_eq!(*draws_a.borrow(), *draws_b.borrow());
        let d = draws_a.borrow();
        assert_ne!(d[0], d[1], "different cycles draw differently");
    }

    #[test]
    fn periodic_activation_counts_cycles() {
        let mut sim = Simulation::new(0);
        let client = DeterministicClient::new("c", sim.fork_rng("det"));
        client.register_task("noop", |_| {});
        client.start(
            &mut sim,
            Duration::from_millis(5),
            Duration::from_millis(10),
        );
        sim.run_until(Instant::from_millis(36));
        assert_eq!(client.cycles(), 4); // at 5, 15, 25, 35
    }
}
