//! # dear-arena — key-typed arenas for reactor program storage
//!
//! A reactor program is a bundle of parallel tables: reactors, ports,
//! actions, timers and reactions, each addressed by a small integer id.
//! Storing them as `Vec<T>` indexed by raw `usize` works, but every lookup
//! is a bounds-check-and-pray affair and nothing stops a `PortId` from
//! being used where a `ReactionId` belongs once both have decayed to
//! `usize`.
//!
//! [`TypedArena<K, V>`] keeps the dense `Vec` storage (contiguous,
//! cache-friendly, allocation-free iteration) but makes the *key type*
//! part of the container type: an arena keyed by `PortId` can only be
//! indexed by `PortId`. Keys are handed out by [`TypedArena::push`] in
//! insertion order, so a key is valid for its arena by construction — the
//! common tinymap-style design used by reactor frameworks (boomerang's
//! `tinymap::TinyMap` is the direct inspiration).
//!
//! ```
//! use dear_arena::{Key, TypedArena, TypedKey};
//!
//! // A lightweight key distinguished by a marker type.
//! enum Widget {}
//! let mut arena: TypedArena<TypedKey<Widget>, &str> = TypedArena::new();
//! let a = arena.push("alpha");
//! let b = arena.push("beta");
//! assert_eq!(arena[a], "alpha");
//! assert_eq!(arena[b], "beta");
//! assert_eq!(arena.len(), 2);
//! assert_eq!(b.index(), 1);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::fmt;
use std::marker::PhantomData;

/// A type that can index a [`TypedArena`].
///
/// Implementors are thin wrappers over a dense index. The contract is the
/// obvious round-trip: `Self::from_index(i).index() == i`.
///
/// `from_index` may panic if `index` exceeds the key's representable range
/// (the DEAR id newtypes store `u32`).
pub trait Key: Copy + Eq + Ord {
    /// Builds the key addressing slot `index`.
    fn from_index(index: usize) -> Self;
    /// The dense slot this key addresses.
    fn index(self) -> usize;
}

/// A ready-made [`Key`] distinguished by a phantom marker type.
///
/// Use this when a table needs its own key space but no hand-written
/// newtype exists:
///
/// ```
/// use dear_arena::{Key, TypedArena, TypedKey};
///
/// enum Sensor {}
/// enum Actuator {}
/// let mut sensors: TypedArena<TypedKey<Sensor>, u32> = TypedArena::new();
/// let mut actuators: TypedArena<TypedKey<Actuator>, u32> = TypedArena::new();
/// let s = sensors.push(7);
/// let a = actuators.push(9);
/// assert_eq!(sensors[s], 7);
/// assert_eq!(actuators[a], 9);
/// // `sensors[a]` would not compile: the key types differ.
/// ```
pub struct TypedKey<M> {
    raw: u32,
    _marker: PhantomData<fn(M) -> M>,
}

impl<M> TypedKey<M> {
    /// The raw index of this key.
    #[must_use]
    pub fn raw(self) -> u32 {
        self.raw
    }
}

impl<M> Clone for TypedKey<M> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<M> Copy for TypedKey<M> {}
impl<M> PartialEq for TypedKey<M> {
    fn eq(&self, other: &Self) -> bool {
        self.raw == other.raw
    }
}
impl<M> Eq for TypedKey<M> {}
impl<M> PartialOrd for TypedKey<M> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for TypedKey<M> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.raw.cmp(&other.raw)
    }
}
impl<M> std::hash::Hash for TypedKey<M> {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.raw.hash(state);
    }
}
impl<M> fmt::Debug for TypedKey<M> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "TypedKey({})", self.raw)
    }
}

impl<M> Key for TypedKey<M> {
    fn from_index(index: usize) -> Self {
        TypedKey {
            raw: u32::try_from(index).expect("arena index exceeds u32 key range"),
            _marker: PhantomData,
        }
    }
    fn index(self) -> usize {
        self.raw as usize
    }
}

/// A dense table addressed by a typed key.
///
/// Values live in insertion order; [`push`](TypedArena::push) returns the
/// key of the new slot. Indexing with a key handed out by *this* arena is
/// infallible; indexing with a key from another arena of the same key type
/// is a logic error that still hits the underlying bounds check (the crate
/// forbids `unsafe`, so no checks are actually elided — the win is that
/// the type system rules out whole classes of cross-table confusion).
pub struct TypedArena<K, V> {
    items: Vec<V>,
    _marker: PhantomData<fn(K) -> K>,
}

impl<K, V> Default for TypedArena<K, V> {
    fn default() -> Self {
        TypedArena {
            items: Vec::new(),
            _marker: PhantomData,
        }
    }
}

impl<K: Key, V: fmt::Debug> fmt::Debug for TypedArena<K, V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_list().entries(self.items.iter()).finish()
    }
}

impl<K: Key, V: Clone> Clone for TypedArena<K, V> {
    fn clone(&self) -> Self {
        TypedArena {
            items: self.items.clone(),
            _marker: PhantomData,
        }
    }
}

impl<K: Key, V: PartialEq> PartialEq for TypedArena<K, V> {
    fn eq(&self, other: &Self) -> bool {
        self.items == other.items
    }
}
impl<K: Key, V: Eq> Eq for TypedArena<K, V> {}

impl<K: Key, V> TypedArena<K, V> {
    /// Creates an empty arena.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty arena with room for `capacity` values.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        TypedArena {
            items: Vec::with_capacity(capacity),
            _marker: PhantomData,
        }
    }

    /// Creates an arena of `len` slots, each initialised by `f(key)`.
    #[must_use]
    pub fn from_fn(len: usize, mut f: impl FnMut(K) -> V) -> Self {
        TypedArena {
            items: (0..len).map(|i| f(K::from_index(i))).collect(),
            _marker: PhantomData,
        }
    }

    /// Number of values stored.
    #[must_use]
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// `true` when the arena holds no values.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// The key the *next* [`push`](TypedArena::push) will return.
    #[must_use]
    pub fn next_key(&self) -> K {
        K::from_index(self.items.len())
    }

    /// Appends a value, returning its key.
    pub fn push(&mut self, value: V) -> K {
        let key = self.next_key();
        self.items.push(value);
        key
    }

    /// `true` if `key` addresses a slot of this arena.
    #[must_use]
    pub fn contains_key(&self, key: K) -> bool {
        key.index() < self.items.len()
    }

    /// Checked lookup; `None` when the key is out of range (e.g. a handle
    /// minted by a different builder).
    #[must_use]
    pub fn get(&self, key: K) -> Option<&V> {
        self.items.get(key.index())
    }

    /// Checked mutable lookup.
    #[must_use]
    pub fn get_mut(&mut self, key: K) -> Option<&mut V> {
        self.items.get_mut(key.index())
    }

    /// Iterates over values in key order.
    pub fn iter(&self) -> std::slice::Iter<'_, V> {
        self.items.iter()
    }

    /// Iterates over values mutably in key order.
    pub fn iter_mut(&mut self) -> std::slice::IterMut<'_, V> {
        self.items.iter_mut()
    }

    /// Iterates over `(key, &value)` pairs in key order.
    pub fn iter_enumerated(&self) -> impl ExactSizeIterator<Item = (K, &V)> {
        self.items
            .iter()
            .enumerate()
            .map(|(i, v)| (K::from_index(i), v))
    }

    /// Iterates over `(key, &mut value)` pairs in key order.
    pub fn iter_enumerated_mut(&mut self) -> impl ExactSizeIterator<Item = (K, &mut V)> {
        self.items
            .iter_mut()
            .enumerate()
            .map(|(i, v)| (K::from_index(i), v))
    }

    /// Iterates over the keys of all slots.
    pub fn keys(&self) -> impl ExactSizeIterator<Item = K> {
        (0..self.items.len()).map(K::from_index)
    }

    /// The backing slice, in key order.
    #[must_use]
    pub fn as_slice(&self) -> &[V] {
        &self.items
    }

    /// Consumes the arena, returning the backing vector in key order.
    #[must_use]
    pub fn into_vec(self) -> Vec<V> {
        self.items
    }

    /// Maps every value, keeping keys stable.
    #[must_use]
    pub fn map<W>(self, f: impl FnMut(V) -> W) -> TypedArena<K, W> {
        TypedArena {
            items: self.items.into_iter().map(f).collect(),
            _marker: PhantomData,
        }
    }

    /// Maps every `(key, value)` pair, keeping keys stable.
    #[must_use]
    pub fn map_enumerated<W>(self, mut f: impl FnMut(K, V) -> W) -> TypedArena<K, W> {
        TypedArena {
            items: self
                .items
                .into_iter()
                .enumerate()
                .map(|(i, v)| f(K::from_index(i), v))
                .collect(),
            _marker: PhantomData,
        }
    }
}

impl<K: Key, V> std::ops::Index<K> for TypedArena<K, V> {
    type Output = V;
    fn index(&self, key: K) -> &V {
        &self.items[key.index()]
    }
}

impl<K: Key, V> std::ops::IndexMut<K> for TypedArena<K, V> {
    fn index_mut(&mut self, key: K) -> &mut V {
        &mut self.items[key.index()]
    }
}

impl<K: Key, V> From<Vec<V>> for TypedArena<K, V> {
    fn from(items: Vec<V>) -> Self {
        TypedArena {
            items,
            _marker: PhantomData,
        }
    }
}

impl<K: Key, V> FromIterator<V> for TypedArena<K, V> {
    fn from_iter<I: IntoIterator<Item = V>>(iter: I) -> Self {
        TypedArena {
            items: iter.into_iter().collect(),
            _marker: PhantomData,
        }
    }
}

impl<K: Key, V> IntoIterator for TypedArena<K, V> {
    type Item = V;
    type IntoIter = std::vec::IntoIter<V>;
    fn into_iter(self) -> Self::IntoIter {
        self.items.into_iter()
    }
}

impl<'a, K: Key, V> IntoIterator for &'a TypedArena<K, V> {
    type Item = &'a V;
    type IntoIter = std::slice::Iter<'a, V>;
    fn into_iter(self) -> Self::IntoIter {
        self.items.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    enum Marker {}
    type TestKey = TypedKey<Marker>;

    #[test]
    fn push_returns_dense_keys() {
        let mut arena: TypedArena<TestKey, String> = TypedArena::new();
        assert!(arena.is_empty());
        let a = arena.push("a".into());
        let b = arena.push("b".into());
        assert_eq!(a.index(), 0);
        assert_eq!(b.index(), 1);
        assert_eq!(arena.len(), 2);
        assert_eq!(arena[a], "a");
        assert_eq!(arena[b], "b");
        assert_eq!(arena.next_key().index(), 2);
    }

    #[test]
    fn checked_lookup_rejects_foreign_keys() {
        let mut arena: TypedArena<TestKey, u8> = TypedArena::new();
        let k = arena.push(1);
        assert!(arena.contains_key(k));
        let foreign = TestKey::from_index(9);
        assert!(!arena.contains_key(foreign));
        assert_eq!(arena.get(foreign), None);
        assert_eq!(arena.get(k), Some(&1));
    }

    #[test]
    fn iteration_is_in_key_order() {
        let arena: TypedArena<TestKey, u32> = (0..5u32).map(|i| i * 10).collect();
        let pairs: Vec<(usize, u32)> = arena
            .iter_enumerated()
            .map(|(k, &v)| (k.index(), v))
            .collect();
        assert_eq!(pairs, vec![(0, 0), (1, 10), (2, 20), (3, 30), (4, 40)]);
        let keys: Vec<usize> = arena.keys().map(Key::index).collect();
        assert_eq!(keys, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn from_fn_and_map_keep_keys_stable() {
        let arena: TypedArena<TestKey, usize> = TypedArena::from_fn(4, |k: TestKey| k.index() * 2);
        assert_eq!(arena.as_slice(), &[0, 2, 4, 6]);
        let doubled = arena.map(|v| v * 10);
        assert_eq!(doubled.as_slice(), &[0, 20, 40, 60]);
        let tagged = doubled.map_enumerated(|k, v| (k.index(), v));
        assert_eq!(tagged[TestKey::from_index(3)], (3, 60));
    }

    #[test]
    fn index_mut_and_take_roundtrip() {
        let mut arena: TypedArena<TestKey, Option<u32>> = TypedArena::from_fn(3, |_| None);
        let k = TestKey::from_index(1);
        arena[k] = Some(7);
        assert_eq!(arena[k], Some(7));
        // `std::mem::take` works (Default impl) — the runtime relies on
        // this to loan arenas to worker threads.
        let taken = std::mem::take(&mut arena);
        assert_eq!(taken.len(), 3);
        assert!(arena.is_empty());
    }

    #[test]
    fn keys_are_ordered_and_hashable() {
        use std::collections::BTreeSet;
        let set: BTreeSet<TestKey> = (0..3).map(TestKey::from_index).collect();
        assert_eq!(set.len(), 3);
        assert_eq!(set.iter().next().copied(), Some(TestKey::from_index(0)));
        assert!(TestKey::from_index(0) < TestKey::from_index(2));
    }

    #[test]
    #[should_panic(expected = "arena index exceeds u32 key range")]
    fn oversized_index_panics() {
        let _ = TestKey::from_index(usize::try_from(u64::from(u32::MAX) + 1).unwrap());
    }
}
