//! Vendored compile-fail harness for `#[derive(Reactor)]` — the same
//! contract as `trybuild`, with no dependency: each fixture under
//! `tests/ui/` is compiled by shelling out to `rustc` against the
//! already-built workspace artifacts, and
//!
//! * a fixture whose first line carries a `//~ ERROR: <substring>` marker
//!   must FAIL to compile with that substring in the diagnostics;
//! * a fixture without a marker (the positive control `ok.rs`) must
//!   compile cleanly — guarding against a broken harness that would fail
//!   everything and pass the error assertions vacuously.
//!
//! The rlibs of `dear-core`/`dear-time` and the `dear-macros` proc-macro
//! dylib are located in the test binary's own `deps/` directory; they are
//! guaranteed to exist because both crates are dev-dependencies.

use std::fs;
use std::path::{Path, PathBuf};
use std::process::Command;
use std::time::SystemTime;

/// `target/<profile>/deps` — the directory this test binary lives in.
fn deps_dir() -> PathBuf {
    let exe = std::env::current_exe().expect("test executable path");
    exe.parent().expect("deps directory").to_path_buf()
}

/// Newest artifact named `lib<stem>-<hash><ext>` in `deps`.
fn find_artifact(deps: &Path, stem: &str, exts: &[&str]) -> PathBuf {
    let prefix = format!("lib{stem}-");
    let mut best: Option<(SystemTime, PathBuf)> = None;
    for entry in fs::read_dir(deps).expect("read deps dir") {
        let entry = entry.expect("deps dir entry");
        let name = entry.file_name().into_string().unwrap_or_default();
        if !name.starts_with(&prefix) || !exts.iter().any(|e| name.ends_with(e)) {
            continue;
        }
        let mtime = entry
            .metadata()
            .and_then(|m| m.modified())
            .unwrap_or(SystemTime::UNIX_EPOCH);
        if best.as_ref().is_none_or(|(t, _)| mtime > *t) {
            best = Some((mtime, entry.path()));
        }
    }
    best.map(|(_, p)| p).unwrap_or_else(|| {
        panic!(
            "no lib{stem}-*{exts:?} artifact in {} — build the workspace first",
            deps.display()
        )
    })
}

/// The `//~ ERROR: <substring>` marker of a fixture, if present.
fn expected_error(source: &str) -> Option<String> {
    source.lines().next().and_then(|line| {
        line.trim()
            .strip_prefix("//~ ERROR:")
            .map(|s| s.trim().to_string())
    })
}

/// Compiles one fixture; returns (success, combined diagnostics).
fn compile(fixture: &Path) -> (bool, String) {
    let deps = deps_dir();
    let core = find_artifact(&deps, "dear_core", &[".rlib"]);
    let time = find_artifact(&deps, "dear_time", &[".rlib"]);
    let macros = find_artifact(&deps, "dear_macros", &[".so", ".dylib", ".dll"]);
    let out_dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join("compile_fail");
    fs::create_dir_all(&out_dir).expect("create out dir");

    let rustc = std::env::var("RUSTC").unwrap_or_else(|_| "rustc".to_string());
    let output = Command::new(rustc)
        .arg("--edition=2021")
        .arg("--crate-type=bin")
        // Type-check only: macro expansion and all type errors surface,
        // but nothing is linked, keeping the harness fast.
        .arg("--emit=metadata")
        .arg("-L")
        .arg(format!("dependency={}", deps.display()))
        .arg("--extern")
        .arg(format!("dear_core={}", core.display()))
        .arg("--extern")
        .arg(format!("dear_time={}", time.display()))
        .arg("--extern")
        .arg(format!("dear_macros={}", macros.display()))
        .arg("--out-dir")
        .arg(&out_dir)
        .arg(fixture)
        .output()
        .expect("spawn rustc");
    let diagnostics = format!(
        "{}{}",
        String::from_utf8_lossy(&output.stderr),
        String::from_utf8_lossy(&output.stdout)
    );
    (output.status.success(), diagnostics)
}

#[test]
fn ui_fixtures() {
    let ui = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/ui");
    let mut fixtures: Vec<PathBuf> = fs::read_dir(&ui)
        .expect("tests/ui exists")
        .map(|e| e.expect("ui entry").path())
        .filter(|p| p.extension().is_some_and(|e| e == "rs"))
        .collect();
    fixtures.sort();
    assert!(
        fixtures.len() >= 6,
        "expected the full fixture set, found {}",
        fixtures.len()
    );

    let mut checked_ok = false;
    for fixture in &fixtures {
        let name = fixture.file_name().unwrap().to_string_lossy().to_string();
        let source = fs::read_to_string(fixture).expect("read fixture");
        let (success, diagnostics) = compile(fixture);
        match expected_error(&source) {
            Some(expected) => {
                assert!(
                    !success,
                    "{name}: expected a compile error containing {expected:?}, but it compiled"
                );
                assert!(
                    diagnostics.contains(&expected),
                    "{name}: diagnostics lack {expected:?}:\n{diagnostics}"
                );
            }
            None => {
                assert!(
                    success,
                    "{name}: positive control failed to compile:\n{diagnostics}"
                );
                checked_ok = true;
            }
        }
    }
    assert!(checked_ok, "fixture set lacks a positive control");
}
