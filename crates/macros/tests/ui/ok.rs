//! Positive control: a well-formed reactor must compile. If this fixture
//! fails, the harness itself (extern paths, deps dir) is broken, and the
//! compile-fail assertions below it would pass vacuously.

use dear_core::{Port, ProgramBuilder, Reaction, ReactionCtx, Reactor, Runtime, Timer};
use dear_time::{Duration, Instant};

#[derive(Reactor)]
#[reactor(state = u64)]
struct Counter {
    #[timer(period = Duration::from_millis(10))]
    tick: Timer,
    #[output]
    count: Port<u64>,
    #[reaction(triggers(tick), effects(count))]
    bump: Reaction,
}

impl Counter {
    fn bump(state: &mut u64, this: &Self, ctx: &mut ReactionCtx<'_>) {
        *state += 1;
        ctx.set(this.count, *state);
        if *state >= 3 {
            ctx.request_shutdown();
        }
    }
}

fn main() {
    let mut b = ProgramBuilder::new();
    let _counter: Counter = b.declare("counter", 0);
    let mut rt = Runtime::new(b.build().unwrap());
    rt.start(Instant::EPOCH);
    rt.run_fast(u64::MAX);
    assert_eq!(rt.stats().executed_reactions, 3);
}
