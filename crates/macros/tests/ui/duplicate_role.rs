//~ ERROR: more than one role attribute

use dear_core::{Port, Reactor};

#[derive(Reactor)]
struct TwoRoles {
    #[input]
    #[output]
    port: Port<u64>,
}

fn main() {}
