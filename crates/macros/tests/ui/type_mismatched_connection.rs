//~ ERROR: mismatched types

use dear_core::{Port, ProgramBuilder, Reaction, ReactionCtx, Reactor, Timer};
use dear_time::Duration;

#[derive(Reactor)]
struct Producer {
    #[timer(period = Duration::from_millis(1))]
    tick: Timer,
    #[output]
    out: Port<u64>,
    #[reaction(triggers(tick), effects(out))]
    emit: Reaction,
}

impl Producer {
    fn emit(_: &mut (), this: &Self, ctx: &mut ReactionCtx<'_>) {
        ctx.set(this.out, 1u64);
    }
}

#[derive(Reactor)]
struct Consumer {
    #[input]
    inp: Port<String>,
    #[reaction(triggers(inp))]
    recv: Reaction,
}

impl Consumer {
    fn recv(_: &mut (), this: &Self, ctx: &mut ReactionCtx<'_>) {
        let _ = ctx.get(this.inp);
    }
}

fn main() {
    let mut b = ProgramBuilder::new();
    let p: Producer = b.declare("p", ());
    let c: Consumer = b.declare("c", ());
    // Port<u64> into Port<String>: the derive carries the payload types
    // into the handles, so this stays a compile error.
    b.connect(p.out, c.inp).unwrap();
}
