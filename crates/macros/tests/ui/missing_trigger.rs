//~ ERROR: declares no triggers

use dear_core::{Port, Reaction, Reactor};

#[derive(Reactor)]
struct NoTrigger {
    #[output]
    out: Port<u64>,
    #[reaction(effects(out))]
    run: Reaction,
}

fn main() {}
