//~ ERROR: needs a role attribute

use dear_core::{Port, Reactor};

#[derive(Reactor)]
struct Roleless {
    out: Port<u64>,
}

fn main() {}
