//~ ERROR: has the wrong kind to be an effected port

use dear_core::{Port, Reaction, Reactor, Timer};
use dear_time::Duration;

#[derive(Reactor)]
struct TimerEffect {
    #[timer(period = Duration::from_millis(1))]
    tick: Timer,
    #[input]
    inp: Port<u64>,
    #[reaction(triggers(inp), effects(tick))]
    run: Reaction,
}

fn main() {}
