//~ ERROR: references unknown element `nonexistent`

use dear_core::{Port, Reaction, Reactor};

#[derive(Reactor)]
struct GhostTrigger {
    #[input]
    inp: Port<u64>,
    #[reaction(triggers(nonexistent))]
    run: Reaction,
}

fn main() {}
