//! # dear-macros — derive macros for authoring DEAR reactors
//!
//! [`derive@Reactor`] turns a plain struct of typed handles into a
//! reactor *specification*: the derive generates an implementation of
//! `dear_core::ReactorSpec` whose `declare_in` method performs exactly
//! the `ProgramBuilder` calls a hand-written assembly would, in field
//! declaration order. Ports, actions and timers become struct fields;
//! reactions are declared with `#[reaction(...)]` attributes on marker
//! fields and their bodies are ordinary associated functions.
//!
//! The macro is written directly against [`proc_macro`] — no `syn`/`quote`
//! — so the crate has zero dependencies and builds offline.
//!
//! ```ignore
//! use dear_core::{Port, Reaction, ReactionCtx, Reactor, Timer};
//! use dear_time::Duration;
//!
//! #[derive(Reactor)]
//! #[reactor(state = i64)]
//! struct Sensor {
//!     #[timer(period = Duration::from_millis(10))]
//!     tick: Timer,
//!     #[output]
//!     reading: Port<i64>,
//!     #[reaction(triggers(tick), effects(reading))]
//!     sample: Reaction,
//! }
//!
//! impl Sensor {
//!     fn sample(state: &mut i64, this: &Self, ctx: &mut ReactionCtx<'_>) {
//!         *state += 1;
//!         ctx.set(this.reading, *state);
//!     }
//! }
//!
//! // let sensor: Sensor = builder.declare("sensor", 0i64);
//! ```
//!
//! What the derive checks at *compile time* (misuse fails to build — see
//! the compile-fail harness in `tests/`):
//!
//! * every `#[reaction]` names at least one trigger;
//! * triggers / uses / effects / schedules refer to declared fields of the
//!   right kind (a timer cannot be an effect, a port cannot be scheduled);
//! * `#[input]`/`#[output]` fields are `Port<T>`, `#[action]` fields are
//!   `LogicalAction<T>`/`PhysicalAction<T>`, `#[timer]` fields are
//!   `Timer`, `#[reaction]` fields are `Reaction` markers;
//! * port value types flow into the generated `builder.input::<T>()`
//!   calls, so type-mismatched connections stay compile errors.

#![warn(missing_docs)]

use proc_macro::{Delimiter, Group, Ident, Literal, Punct, Spacing, Span, TokenStream, TokenTree};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::iter::Peekable;

/// Derives `dear_core::ReactorSpec` for a struct of reactor handles.
///
/// See the crate-level documentation for the field attribute grammar:
/// `#[input]`, `#[output]`, `#[action(min_delay = ...)]`,
/// `#[timer(offset = ..., period = ...)]`, `#[external]`,
/// `#[reaction(triggers(...), uses(...), effects(...), schedules(...),
/// deadline = ..., on_deadline = ..., fn = ...)]`, plus the struct-level
/// `#[reactor(state = Type)]`.
#[proc_macro_derive(
    Reactor,
    attributes(reactor, input, output, action, timer, reaction, external)
)]
pub fn derive_reactor(input: TokenStream) -> TokenStream {
    match expand(input) {
        Ok(ts) => ts,
        Err(e) => compile_error(&e),
    }
}

struct Error {
    span: Span,
    msg: String,
}

impl Error {
    fn new(span: Span, msg: impl Into<String>) -> Self {
        Error {
            span,
            msg: msg.into(),
        }
    }
}

type Result<T> = std::result::Result<T, Error>;

fn compile_error(err: &Error) -> TokenStream {
    let mut punct = Punct::new('!', Spacing::Alone);
    punct.set_span(err.span);
    let mut lit = Literal::string(&err.msg);
    lit.set_span(err.span);
    let mut group = Group::new(
        Delimiter::Brace,
        TokenStream::from_iter([TokenTree::Literal(lit)]),
    );
    group.set_span(err.span);
    TokenStream::from_iter([
        TokenTree::Ident(Ident::new("compile_error", err.span)),
        TokenTree::Punct(punct),
        TokenTree::Group(group),
    ])
}

// --- attribute & token helpers ------------------------------------------

struct Attr {
    name: String,
    span: Span,
    /// The tokens inside `#[name(...)]`, if the attribute has arguments.
    args: Option<TokenStream>,
}

type TokenIter = Peekable<proc_macro::token_stream::IntoIter>;

/// Consumes leading `#[...]` attributes (including doc comments).
fn take_attrs(it: &mut TokenIter) -> Result<Vec<Attr>> {
    let mut attrs = Vec::new();
    while matches!(it.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
        let hash = it.next().expect("peeked");
        let Some(TokenTree::Group(g)) = it.next() else {
            return Err(Error::new(hash.span(), "malformed attribute"));
        };
        let mut inner = g.stream().into_iter();
        let Some(TokenTree::Ident(name)) = inner.next() else {
            // e.g. `#[cfg(...)]`-like paths we don't care about; skip.
            continue;
        };
        let args = match inner.next() {
            Some(TokenTree::Group(args)) if args.delimiter() == Delimiter::Parenthesis => {
                Some(args.stream())
            }
            // `#[doc = "..."]` and other key-value attrs we ignore.
            _ => None,
        };
        attrs.push(Attr {
            name: name.to_string(),
            span: name.span(),
            args,
        });
    }
    Ok(attrs)
}

/// Skips `pub` / `pub(...)`, returning the tokens skipped.
fn take_vis(it: &mut TokenIter) -> Vec<TokenTree> {
    let mut vis = Vec::new();
    if matches!(it.peek(), Some(TokenTree::Ident(i)) if i.to_string() == "pub") {
        vis.push(it.next().expect("peeked"));
        if matches!(it.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            vis.push(it.next().expect("peeked"));
        }
    }
    vis
}

/// Splits a token stream on top-level commas, tracking `<...>` nesting so
/// generic arguments survive intact.
fn split_commas(ts: TokenStream) -> Vec<Vec<TokenTree>> {
    let mut out: Vec<Vec<TokenTree>> = Vec::new();
    let mut current: Vec<TokenTree> = Vec::new();
    let mut depth = 0i32;
    let mut tokens = ts.into_iter().peekable();
    while let Some(tt) = tokens.next() {
        if let TokenTree::Punct(p) = &tt {
            match p.as_char() {
                '<' => depth += 1,
                '>' => depth -= 1,
                '-' if p.spacing() == Spacing::Joint => {
                    // `->` of a fn-pointer type: swallow the '>' so it
                    // does not unbalance the depth counter.
                    current.push(tt);
                    if let Some(arrow) = tokens.next() {
                        current.push(arrow);
                    }
                    continue;
                }
                ',' if depth == 0 => {
                    out.push(std::mem::take(&mut current));
                    continue;
                }
                _ => {}
            }
        }
        current.push(tt);
    }
    if !current.is_empty() {
        out.push(current);
    }
    out
}

fn tokens_to_string(tokens: &[TokenTree]) -> String {
    TokenStream::from_iter(tokens.iter().cloned()).to_string()
}

/// One parsed argument of a helper attribute:
/// `flag`, `key(item, item)`, or `key = tokens`.
enum ArgItem {
    Flag(Ident),
    List(Ident, Vec<Vec<TokenTree>>),
    Value(Ident, Vec<TokenTree>),
}

fn parse_args(args: TokenStream) -> Result<Vec<ArgItem>> {
    let mut items = Vec::new();
    for part in split_commas(args) {
        let mut it = part.into_iter();
        let Some(TokenTree::Ident(key)) = it.next() else {
            return Err(Error::new(
                Span::call_site(),
                "expected `key`, `key(...)` or `key = ...` in attribute arguments",
            ));
        };
        match it.next() {
            None => items.push(ArgItem::Flag(key)),
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                if it.next().is_some() {
                    return Err(Error::new(key.span(), "unexpected tokens after list"));
                }
                items.push(ArgItem::List(key, split_commas(g.stream())));
            }
            Some(TokenTree::Punct(p)) if p.as_char() == '=' => {
                let rest: Vec<TokenTree> = it.collect();
                if rest.is_empty() {
                    return Err(Error::new(key.span(), "expected a value after `=`"));
                }
                items.push(ArgItem::Value(key, unquote_value(rest)?));
            }
            Some(other) => {
                return Err(Error::new(
                    other.span(),
                    "expected `key`, `key(...)` or `key = ...`",
                ))
            }
        }
    }
    Ok(items)
}

/// Accepts syn-style quoted values (`deadline = "Duration::from_millis(5)"`)
/// next to bare token values: a single string literal is unquoted and
/// re-parsed as expression tokens, re-spanned to the literal so type errors
/// in the expression point at the attribute.
fn unquote_value(rest: Vec<TokenTree>) -> Result<Vec<TokenTree>> {
    if let [TokenTree::Literal(lit)] = rest.as_slice() {
        let s = lit.to_string();
        if s.len() >= 2 && s.starts_with('"') && s.ends_with('"') {
            let inner = s[1..s.len() - 1]
                .replace("\\\"", "\"")
                .replace("\\\\", "\\");
            let parsed: TokenStream = inner.parse().map_err(|_| {
                Error::new(lit.span(), "cannot parse string value as an expression")
            })?;
            let span = lit.span();
            return Ok(parsed
                .into_iter()
                .map(|mut tt| {
                    tt.set_span(span);
                    tt
                })
                .collect());
        }
    }
    Ok(rest)
}

fn single_ident(tokens: &[TokenTree], what: &str) -> Result<Ident> {
    match tokens {
        [TokenTree::Ident(id)] => Ok(id.clone()),
        _ => Err(Error::new(
            tokens.first().map_or_else(Span::call_site, TokenTree::span),
            format!("expected a single identifier for {what}"),
        )),
    }
}

/// Splits a type like `path::To::Port<T>` into its final type name and the
/// generic argument tokens (if any).
fn type_name_and_generic(ty: &[TokenTree]) -> (Option<String>, Option<Vec<TokenTree>>) {
    let mut last_ident: Option<String> = None;
    for (i, tt) in ty.iter().enumerate() {
        match tt {
            TokenTree::Ident(id) => last_ident = Some(id.to_string()),
            TokenTree::Punct(p) if p.as_char() == '<' => {
                // Collect to the matching top-level '>'.
                let mut depth = 1i32;
                let mut inner = Vec::new();
                for tt in &ty[i + 1..] {
                    if let TokenTree::Punct(p) = tt {
                        match p.as_char() {
                            '<' => depth += 1,
                            '>' => {
                                depth -= 1;
                                if depth == 0 {
                                    break;
                                }
                            }
                            _ => {}
                        }
                    }
                    inner.push(tt.clone());
                }
                return (last_ident, Some(inner));
            }
            _ => {}
        }
    }
    (last_ident, None)
}

// --- parsed model --------------------------------------------------------

enum Trigger {
    Startup,
    Shutdown,
    Field(Ident),
}

struct ReactionSpec {
    triggers: Vec<Trigger>,
    uses: Vec<Ident>,
    effects: Vec<Ident>,
    schedules: Vec<Ident>,
    deadline: Option<Vec<TokenTree>>,
    on_deadline: Option<Ident>,
    func: Option<Ident>,
}

enum Role {
    Input {
        inner: Vec<TokenTree>,
    },
    Output {
        inner: Vec<TokenTree>,
    },
    Action {
        physical: bool,
        inner: Vec<TokenTree>,
        min_delay: Option<Vec<TokenTree>>,
    },
    Timer {
        offset: Option<Vec<TokenTree>>,
        period: Option<Vec<TokenTree>>,
    },
    External,
    Reaction(ReactionSpec),
}

struct Field {
    vis: Vec<TokenTree>,
    name: Ident,
    ty: Vec<TokenTree>,
    role: Role,
}

struct StructDef {
    vis: Vec<TokenTree>,
    name: Ident,
    state: Option<Vec<TokenTree>>,
    fields: Vec<Field>,
}

// --- parsing -------------------------------------------------------------

fn parse_struct(input: TokenStream) -> Result<StructDef> {
    let mut it = input.into_iter().peekable();
    let struct_attrs = take_attrs(&mut it)?;
    let vis = take_vis(&mut it);
    match it.next() {
        Some(TokenTree::Ident(kw)) if kw.to_string() == "struct" => {}
        other => {
            return Err(Error::new(
                other.map_or_else(Span::call_site, |t| t.span()),
                "#[derive(Reactor)] only supports structs",
            ))
        }
    }
    let Some(TokenTree::Ident(name)) = it.next() else {
        return Err(Error::new(Span::call_site(), "expected a struct name"));
    };
    let body = match it.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g,
        Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
            return Err(Error::new(
                p.span(),
                "#[derive(Reactor)] does not support generic structs",
            ))
        }
        other => {
            return Err(Error::new(
                other.map_or_else(|| name.span(), |t| t.span()),
                "#[derive(Reactor)] requires a struct with named fields",
            ))
        }
    };

    let mut state = None;
    for attr in &struct_attrs {
        if attr.name != "reactor" {
            continue;
        }
        let args = attr
            .args
            .clone()
            .ok_or_else(|| Error::new(attr.span, "expected #[reactor(state = Type)]"))?;
        for item in parse_args(args)? {
            match item {
                ArgItem::Value(key, value) if key.to_string() == "state" => {
                    state = Some(value);
                }
                ArgItem::Flag(key) | ArgItem::List(key, _) | ArgItem::Value(key, _) => {
                    return Err(Error::new(
                        key.span(),
                        format!("unknown #[reactor] argument `{key}`; expected `state = Type`"),
                    ))
                }
            }
        }
    }

    let mut fields = Vec::new();
    let mut body_it = body.stream().into_iter().peekable();
    loop {
        let attrs = take_attrs(&mut body_it)?;
        if body_it.peek().is_none() {
            if attrs.iter().any(|a| a.name != "doc") {
                return Err(Error::new(
                    attrs.last().expect("non-empty").span,
                    "attribute without a field",
                ));
            }
            break;
        }
        let field_vis = take_vis(&mut body_it);
        let Some(TokenTree::Ident(fname)) = body_it.next() else {
            return Err(Error::new(Span::call_site(), "expected a field name"));
        };
        match body_it.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => {
                return Err(Error::new(
                    other.map_or_else(|| fname.span(), |t| t.span()),
                    "expected `:` after field name",
                ))
            }
        }
        // Collect the type up to the next top-level comma.
        let mut ty = Vec::new();
        let mut depth = 0i32;
        while let Some(tt) = body_it.peek() {
            if let TokenTree::Punct(p) = tt {
                match p.as_char() {
                    '<' => depth += 1,
                    '>' => depth -= 1,
                    ',' if depth == 0 => {
                        body_it.next();
                        break;
                    }
                    _ => {}
                }
            }
            ty.push(body_it.next().expect("peeked"));
        }
        if ty.is_empty() {
            return Err(Error::new(fname.span(), "expected a field type"));
        }
        let role = parse_role(&fname, &ty, &attrs)?;
        let reserved = fname.to_string();
        if reserved == "ext" || reserved == "this" || reserved.starts_with("__") {
            return Err(Error::new(
                fname.span(),
                format!("field name `{reserved}` is reserved by #[derive(Reactor)]"),
            ));
        }
        fields.push(Field {
            vis: field_vis,
            name: fname,
            ty,
            role,
        });
    }

    Ok(StructDef {
        vis,
        name,
        state,
        fields,
    })
}

fn parse_role(fname: &Ident, ty: &[TokenTree], attrs: &[Attr]) -> Result<Role> {
    const ROLES: [&str; 6] = ["input", "output", "action", "timer", "reaction", "external"];
    let mut role_attrs: Vec<&Attr> = attrs
        .iter()
        .filter(|a| ROLES.contains(&a.name.as_str()))
        .collect();
    let Some(attr) = role_attrs.pop() else {
        return Err(Error::new(
            fname.span(),
            format!(
                "field `{fname}` needs a role attribute: one of #[input], #[output], \
                 #[action], #[timer], #[reaction(...)] or #[external]"
            ),
        ));
    };
    if let Some(extra) = role_attrs.pop() {
        return Err(Error::new(
            extra.span,
            format!("field `{fname}` has more than one role attribute"),
        ));
    }
    let (ty_name, generic) = type_name_and_generic(ty);
    let ty_name = ty_name.unwrap_or_default();
    let no_args = |attr: &Attr| -> Result<()> {
        if attr.args.is_some() {
            return Err(Error::new(
                attr.span,
                format!("#[{}] takes no arguments", attr.name),
            ));
        }
        Ok(())
    };
    match attr.name.as_str() {
        kind @ ("input" | "output") => {
            no_args(attr)?;
            let Some(inner) = generic.filter(|_| ty_name == "Port") else {
                return Err(Error::new(
                    fname.span(),
                    format!("#[{kind}] field `{fname}` must have type Port<T>"),
                ));
            };
            if kind == "input" {
                Ok(Role::Input { inner })
            } else {
                Ok(Role::Output { inner })
            }
        }
        "action" => {
            let physical = match ty_name.as_str() {
                "LogicalAction" => false,
                "PhysicalAction" => true,
                _ => {
                    return Err(Error::new(
                        fname.span(),
                        format!(
                            "#[action] field `{fname}` must have type LogicalAction<T> \
                             or PhysicalAction<T>"
                        ),
                    ))
                }
            };
            let Some(inner) = generic else {
                return Err(Error::new(
                    fname.span(),
                    "action types carry a payload type",
                ));
            };
            let mut min_delay = None;
            if let Some(args) = attr.args.clone() {
                for item in parse_args(args)? {
                    match item {
                        ArgItem::Value(key, value) if key.to_string() == "min_delay" => {
                            min_delay = Some(value);
                        }
                        ArgItem::Flag(key) | ArgItem::List(key, _) | ArgItem::Value(key, _) => {
                            return Err(Error::new(
                                key.span(),
                                format!(
                                    "unknown #[action] argument `{key}`; expected \
                                     `min_delay = expr`"
                                ),
                            ))
                        }
                    }
                }
            }
            Ok(Role::Action {
                physical,
                inner,
                min_delay,
            })
        }
        "timer" => {
            if ty_name != "Timer" {
                return Err(Error::new(
                    fname.span(),
                    format!("#[timer] field `{fname}` must have type Timer"),
                ));
            }
            let mut offset = None;
            let mut period = None;
            if let Some(args) = attr.args.clone() {
                for item in parse_args(args)? {
                    match item {
                        ArgItem::Value(key, value) if key.to_string() == "offset" => {
                            offset = Some(value);
                        }
                        ArgItem::Value(key, value) if key.to_string() == "period" => {
                            period = Some(value);
                        }
                        ArgItem::Flag(key) | ArgItem::List(key, _) | ArgItem::Value(key, _) => {
                            return Err(Error::new(
                                key.span(),
                                format!(
                                    "unknown #[timer] argument `{key}`; expected \
                                     `offset = expr` and/or `period = expr`"
                                ),
                            ))
                        }
                    }
                }
            }
            Ok(Role::Timer { offset, period })
        }
        "external" => {
            no_args(attr)?;
            Ok(Role::External)
        }
        "reaction" => {
            if ty_name != "Reaction" {
                return Err(Error::new(
                    fname.span(),
                    format!("#[reaction] field `{fname}` must have type Reaction (the marker)"),
                ));
            }
            let mut spec = ReactionSpec {
                triggers: Vec::new(),
                uses: Vec::new(),
                effects: Vec::new(),
                schedules: Vec::new(),
                deadline: None,
                on_deadline: None,
                func: None,
            };
            let Some(args) = attr.args.clone() else {
                return Err(Error::new(
                    attr.span,
                    format!(
                        "reaction `{fname}` declares no triggers — write \
                         #[reaction(triggers(...))]"
                    ),
                ));
            };
            for item in parse_args(args)? {
                match item {
                    ArgItem::List(key, items) if key.to_string() == "triggers" => {
                        for t in items {
                            let id = single_ident(&t, "a trigger")?;
                            spec.triggers.push(match id.to_string().as_str() {
                                "startup" => Trigger::Startup,
                                "shutdown" => Trigger::Shutdown,
                                _ => Trigger::Field(id),
                            });
                        }
                    }
                    ArgItem::List(key, items) if key.to_string() == "uses" => {
                        for t in items {
                            spec.uses.push(single_ident(&t, "a used port")?);
                        }
                    }
                    ArgItem::List(key, items) if key.to_string() == "effects" => {
                        for t in items {
                            spec.effects.push(single_ident(&t, "an effected port")?);
                        }
                    }
                    ArgItem::List(key, items) if key.to_string() == "schedules" => {
                        for t in items {
                            spec.schedules.push(single_ident(&t, "a scheduled action")?);
                        }
                    }
                    ArgItem::Value(key, value) if key.to_string() == "deadline" => {
                        spec.deadline = Some(value);
                    }
                    ArgItem::Value(key, value) if key.to_string() == "on_deadline" => {
                        spec.on_deadline = Some(single_ident(&value, "the deadline handler")?);
                    }
                    ArgItem::Value(key, value)
                        if key.to_string() == "fn" || key.to_string() == "body" =>
                    {
                        spec.func = Some(single_ident(&value, "the body function")?);
                    }
                    ArgItem::Flag(key) | ArgItem::List(key, _) | ArgItem::Value(key, _) => {
                        return Err(Error::new(
                            key.span(),
                            format!(
                                "unknown #[reaction] argument `{key}`; expected triggers(...), \
                                 uses(...), effects(...), schedules(...), deadline = expr, \
                                 on_deadline = handler or fn = body"
                            ),
                        ))
                    }
                }
            }
            if spec.triggers.is_empty() {
                return Err(Error::new(
                    attr.span,
                    format!(
                        "reaction `{fname}` declares no triggers — every reaction needs at \
                         least one trigger (a port, action, timer, startup or shutdown)"
                    ),
                ));
            }
            if spec.deadline.is_some() != spec.on_deadline.is_some() {
                return Err(Error::new(
                    attr.span,
                    format!(
                        "reaction `{fname}`: `deadline` and `on_deadline` must be given together"
                    ),
                ));
            }
            Ok(Role::Reaction(spec))
        }
        _ => unreachable!("filtered to known roles"),
    }
}

// --- validation ----------------------------------------------------------

#[derive(Clone, Copy, PartialEq, Eq)]
enum ElementKind {
    Port,
    Action,
    Timer,
    External,
}

fn validate(def: &StructDef) -> Result<BTreeMap<String, ElementKind>> {
    let mut elements: BTreeMap<String, ElementKind> = BTreeMap::new();
    for f in &def.fields {
        let kind = match f.role {
            Role::Input { .. } | Role::Output { .. } => ElementKind::Port,
            Role::Action { .. } => ElementKind::Action,
            Role::Timer { .. } => ElementKind::Timer,
            Role::External => ElementKind::External,
            Role::Reaction(_) => continue,
        };
        elements.insert(f.name.to_string(), kind);
    }
    for f in &def.fields {
        let Role::Reaction(spec) = &f.role else {
            continue;
        };
        let rname = f.name.to_string();
        let lookup = |id: &Ident, role: &str, allowed: &[ElementKind]| -> Result<()> {
            match elements.get(&id.to_string()) {
                None => Err(Error::new(
                    id.span(),
                    format!("reaction `{rname}` references unknown element `{id}` as {role}"),
                )),
                Some(kind) if allowed.contains(kind) => Ok(()),
                Some(_) => Err(Error::new(
                    id.span(),
                    format!("`{id}` has the wrong kind to be {role} of reaction `{rname}`"),
                )),
            }
        };
        for t in &spec.triggers {
            if let Trigger::Field(id) = t {
                lookup(
                    id,
                    "a trigger",
                    &[
                        ElementKind::Port,
                        ElementKind::Action,
                        ElementKind::Timer,
                        ElementKind::External,
                    ],
                )?;
            }
        }
        for id in &spec.uses {
            lookup(
                id,
                "a used port",
                &[ElementKind::Port, ElementKind::External],
            )?;
        }
        for id in &spec.effects {
            lookup(
                id,
                "an effected port",
                &[ElementKind::Port, ElementKind::External],
            )?;
        }
        for id in &spec.schedules {
            lookup(
                id,
                "a scheduled action",
                &[ElementKind::Action, ElementKind::External],
            )?;
        }
    }
    Ok(elements)
}

// --- code generation -----------------------------------------------------

fn expand(input: TokenStream) -> Result<TokenStream> {
    let def = parse_struct(input)?;
    validate(&def)?;

    let name = def.name.to_string();
    let state = def
        .state
        .as_deref()
        .map_or_else(|| "()".to_string(), tokens_to_string);
    let vis = tokens_to_string(&def.vis);
    let externals: Vec<&Field> = def
        .fields
        .iter()
        .filter(|f| matches!(f.role, Role::External))
        .collect();
    let ext_ty = if externals.is_empty() {
        "()".to_string()
    } else {
        format!("{name}Externals")
    };

    let mut out = String::new();

    // Externals struct, when any #[external] fields exist.
    if !externals.is_empty() {
        let _ = writeln!(
            out,
            "#[doc = \"External handles injected into [`{name}`] at declare time.\"]\n\
             {vis} struct {name}Externals {{"
        );
        for f in &externals {
            let fvis = tokens_to_string(&f.vis);
            let fname = &f.name;
            let fty = tokens_to_string(&f.ty);
            let _ = writeln!(
                out,
                "    #[doc = \"External handle `{fname}`.\"]\n    {fvis} {fname}: {fty},"
            );
        }
        out.push_str("}\n");
    }

    let _ = writeln!(
        out,
        "impl ::dear_core::ReactorSpec for {name} {{\n\
         \x20   type State = {state};\n\
         \x20   type Externals = {ext_ty};\n\
         \x20   #[allow(unused_mut, unused_variables, clippy::too_many_lines)]\n\
         \x20   fn declare_in(\n\
         \x20       __builder: &mut ::dear_core::ProgramBuilder,\n\
         \x20       __name: &str,\n\
         \x20       __state: Self::State,\n\
         \x20       ext: Self::Externals,\n\
         \x20   ) -> Self {{\n\
         \x20       let mut __r = __builder.reactor(__name, __state);"
    );

    // Elements, in field declaration order — the generated ids and names
    // are therefore identical to a hand-written builder that declares in
    // the same order.
    for f in &def.fields {
        let fname = f.name.to_string();
        match &f.role {
            Role::Input { inner } => {
                let t = tokens_to_string(inner);
                let _ = writeln!(out, "        let {fname} = __r.input::<{t}>(\"{fname}\");");
            }
            Role::Output { inner } => {
                let t = tokens_to_string(inner);
                let _ = writeln!(out, "        let {fname} = __r.output::<{t}>(\"{fname}\");");
            }
            Role::Action {
                physical,
                inner,
                min_delay,
            } => {
                let t = tokens_to_string(inner);
                let delay = min_delay.as_deref().map_or_else(
                    || "::dear_core::__rt::Duration::ZERO".into(),
                    tokens_to_string,
                );
                let method = if *physical {
                    "physical_action"
                } else {
                    "logical_action"
                };
                let _ = writeln!(
                    out,
                    "        let {fname} = __r.{method}::<{t}>(\"{fname}\", {delay});"
                );
            }
            Role::Timer { offset, period } => {
                let off = offset.as_deref().map_or_else(
                    || "::dear_core::__rt::Duration::ZERO".into(),
                    tokens_to_string,
                );
                let per = period.as_deref().map_or_else(
                    || "::core::option::Option::None".into(),
                    |p| format!("::core::option::Option::Some({})", tokens_to_string(p)),
                );
                let _ = writeln!(
                    out,
                    "        let {fname} = __r.timer(\"{fname}\", {off}, {per});"
                );
            }
            Role::External | Role::Reaction(_) => {}
        }
    }

    // The handle struct itself; element fields bind the locals above.
    out.push_str("        let this = ");
    out.push_str(&name);
    out.push_str(" {\n");
    for f in &def.fields {
        let fname = f.name.to_string();
        match &f.role {
            Role::External => {
                let _ = writeln!(out, "            {fname}: ext.{fname},");
            }
            Role::Reaction(_) => {
                let _ = writeln!(out, "            {fname}: ::dear_core::Reaction,");
            }
            _ => {
                let _ = writeln!(out, "            {fname},");
            }
        }
    }
    out.push_str("        };\n");

    // Reactions, in field declaration order (priority order).
    for f in &def.fields {
        let Role::Reaction(spec) = &f.role else {
            continue;
        };
        let rname = f.name.to_string();
        let func = spec
            .func
            .as_ref()
            .map_or_else(|| rname.clone(), Ident::to_string);
        out.push_str("        {\n            let __this = this;\n");
        let _ = write!(out, "            __r.reaction(\"{rname}\")");
        for t in &spec.triggers {
            match t {
                Trigger::Startup => {
                    out.push_str("\n                .triggered_by(::dear_core::Startup)")
                }
                Trigger::Shutdown => {
                    out.push_str("\n                .triggered_by(::dear_core::Shutdown)")
                }
                Trigger::Field(id) => {
                    let _ = write!(out, "\n                .triggered_by(__this.{id})");
                }
            }
        }
        for id in &spec.uses {
            let _ = write!(out, "\n                .uses(__this.{id})");
        }
        for id in &spec.effects {
            let _ = write!(out, "\n                .effects(__this.{id})");
        }
        for id in &spec.schedules {
            let _ = write!(out, "\n                .schedules(__this.{id})");
        }
        if let (Some(deadline), Some(handler)) = (&spec.deadline, &spec.on_deadline) {
            let d = tokens_to_string(deadline);
            let _ = write!(
                out,
                "\n                .with_deadline({d}, {{\n\
                 \x20                   let __this = this;\n\
                 \x20                   move |__s: &mut {state}, __ctx: &mut ::dear_core::ReactionCtx<'_>| {{\n\
                 \x20                       {name}::{handler}(__s, &__this, __ctx);\n\
                 \x20                   }}\n\
                 \x20               }})"
            );
        }
        let _ = writeln!(
            out,
            "\n                .body(move |__s: &mut {state}, __ctx: &mut ::dear_core::ReactionCtx<'_>| {{\n\
             \x20                   {name}::{func}(__s, &__this, __ctx);\n\
             \x20               }});\n        }}"
        );
    }

    out.push_str("        __r.finish();\n");
    // Mark every field as read so the handle struct never trips the
    // dead-code lint (reaction markers are otherwise write-only).
    out.push_str("        let _ = (");
    for f in &def.fields {
        let _ = write!(out, "&this.{}, ", f.name);
    }
    out.push_str(");\n        this\n    }\n}\n");

    // Handles are cheap, copyable references into the program; reaction
    // closures capture the whole struct by value.
    let _ = writeln!(
        out,
        "impl ::core::clone::Clone for {name} {{\n\
         \x20   fn clone(&self) -> Self {{ *self }}\n\
         }}\n\
         impl ::core::marker::Copy for {name} {{}}"
    );

    out.parse().map_err(|e| {
        Error::new(
            Span::call_site(),
            format!("dear-macros internal error: generated code failed to parse: {e}"),
        )
    })
}
