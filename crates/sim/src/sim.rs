//! The discrete-event simulation executive.
//!
//! [`Simulation`] owns a calendar of timestamped events and executes them in
//! strict `(time, insertion-sequence)` order, which makes every run with the
//! same seed and the same schedule calls bit-identical. All stochastic
//! behaviour in the workspace (network latency, dispatch jitter, clock skew)
//! is injected *through* events and [`SimRng`](crate::SimRng) streams, so
//! nondeterminism of the modelled system is explicit and replayable — the
//! property that lets us reproduce the paper's Figure 5 error distributions
//! without the original two-board hardware setup.

use crate::rng::SimRng;
use crate::trace::Trace;
use dear_observe::Observe;
use dear_time::{Duration, Instant};
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::fmt;

/// A scheduled event: a boxed closure run at a simulated instant.
type EventFn = Box<dyn FnOnce(&mut Simulation)>;

struct CalEntry {
    at: Instant,
    seq: u64,
    event: EventFn,
}

impl PartialEq for CalEntry {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for CalEntry {}
impl PartialOrd for CalEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for CalEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap but we need earliest-first.
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// Statistics about an executed simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SimStats {
    /// Number of events executed so far.
    pub executed_events: u64,
    /// Number of events currently pending in the calendar.
    pub pending_events: usize,
}

impl fmt::Display for SimStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "executed={} pending={}",
            self.executed_events, self.pending_events
        )
    }
}

/// A seeded discrete-event simulation.
///
/// Events are closures scheduled at absolute or relative virtual times and
/// executed in deterministic order. Components typically live in
/// `Rc<RefCell<...>>` cells captured by the event closures.
///
/// # Examples
///
/// ```
/// use dear_sim::Simulation;
/// use dear_time::{Duration, Instant};
/// use std::cell::RefCell;
/// use std::rc::Rc;
///
/// let mut sim = Simulation::new(42);
/// let hits = Rc::new(RefCell::new(Vec::new()));
///
/// let h = hits.clone();
/// sim.schedule_in(Duration::from_millis(2), move |sim| {
///     h.borrow_mut().push(sim.now());
/// });
/// let h = hits.clone();
/// sim.schedule_in(Duration::from_millis(1), move |sim| {
///     h.borrow_mut().push(sim.now());
/// });
///
/// sim.run_to_completion();
/// assert_eq!(*hits.borrow(), vec![Instant::from_millis(1), Instant::from_millis(2)]);
/// ```
pub struct Simulation {
    now: Instant,
    calendar: BinaryHeap<CalEntry>,
    seq: u64,
    master_seed: u64,
    rng_root: SimRng,
    trace: Trace,
    observe: Observe,
    executed: u64,
    stop_requested: bool,
}

impl std::fmt::Debug for Simulation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulation")
            .field("now", &self.now)
            .field("pending", &self.calendar.len())
            .field("executed", &self.executed)
            .field("master_seed", &self.master_seed)
            .finish()
    }
}

impl Simulation {
    /// Creates a simulation at `t = 0` with the given master seed.
    #[must_use]
    pub fn new(master_seed: u64) -> Self {
        Simulation {
            now: Instant::EPOCH,
            calendar: BinaryHeap::new(),
            seq: 0,
            master_seed,
            rng_root: SimRng::seed_from_u64(master_seed),
            trace: Trace::disabled(),
            observe: Observe::disabled(),
            executed: 0,
            stop_requested: false,
        }
    }

    /// The current virtual time ("true time" of the modelled world).
    #[must_use]
    pub fn now(&self) -> Instant {
        self.now
    }

    /// The master seed this simulation was created with.
    #[must_use]
    pub fn master_seed(&self) -> u64 {
        self.master_seed
    }

    /// Derives a named, reproducible RNG stream from the master seed.
    ///
    /// Streams with different labels are statistically independent; the
    /// same label always yields the same stream for a given master seed.
    #[must_use]
    pub fn fork_rng(&self, label: &str) -> SimRng {
        self.rng_root.fork(label)
    }

    /// Derives an indexed RNG stream (e.g. one per component instance).
    #[must_use]
    pub fn fork_rng_indexed(&self, label: &str, index: u64) -> SimRng {
        self.rng_root.fork_indexed(label, index)
    }

    /// Schedules `event` at the absolute virtual time `at`.
    ///
    /// Events scheduled for the current instant run after the currently
    /// executing event returns (FIFO among equal times).
    ///
    /// # Panics
    ///
    /// Panics if `at` is in the past.
    pub fn schedule_at(&mut self, at: Instant, event: impl FnOnce(&mut Simulation) + 'static) {
        assert!(
            at >= self.now,
            "cannot schedule into the past: at={at} now={}",
            self.now
        );
        let seq = self.seq;
        self.seq += 1;
        self.calendar.push(CalEntry {
            at,
            seq,
            event: Box::new(event),
        });
    }

    /// Schedules `event` after the given non-negative delay.
    ///
    /// # Panics
    ///
    /// Panics if `delay` is negative.
    pub fn schedule_in(&mut self, delay: Duration, event: impl FnOnce(&mut Simulation) + 'static) {
        assert!(!delay.is_negative(), "delay must be non-negative: {delay}");
        self.schedule_at(self.now + delay, event);
    }

    /// The time of the earliest pending event, if any.
    #[must_use]
    pub fn next_event_time(&self) -> Option<Instant> {
        self.calendar.peek().map(|e| e.at)
    }

    /// Executes the earliest pending event; returns `false` if none remain.
    pub fn step(&mut self) -> bool {
        match self.calendar.pop() {
            Some(entry) => {
                debug_assert!(entry.at >= self.now, "calendar went backwards");
                self.now = entry.at;
                self.executed += 1;
                (entry.event)(self);
                true
            }
            None => false,
        }
    }

    /// Runs until the calendar is empty or a stop is requested.
    ///
    /// Returns the number of events executed by this call.
    pub fn run_to_completion(&mut self) -> u64 {
        let before = self.executed;
        while !self.stop_requested && self.step() {}
        self.stop_requested = false;
        self.executed - before
    }

    /// Runs all events with `time <= until`, then advances `now` to `until`.
    ///
    /// Returns the number of events executed by this call.
    pub fn run_until(&mut self, until: Instant) -> u64 {
        let before = self.executed;
        while !self.stop_requested {
            match self.next_event_time() {
                Some(t) if t <= until => {
                    self.step();
                }
                _ => break,
            }
        }
        self.stop_requested = false;
        if self.now < until {
            self.now = until;
        }
        self.executed - before
    }

    /// Runs at most `max_events` events.
    ///
    /// Returns the number of events executed (less than `max_events` if the
    /// calendar drained first).
    pub fn run_events(&mut self, max_events: u64) -> u64 {
        let mut n = 0;
        while n < max_events && !self.stop_requested && self.step() {
            n += 1;
        }
        self.stop_requested = false;
        n
    }

    /// Requests that the current `run_*` call return after the current event.
    pub fn request_stop(&mut self) {
        self.stop_requested = true;
    }

    /// Execution statistics.
    #[must_use]
    pub fn stats(&self) -> SimStats {
        SimStats {
            executed_events: self.executed,
            pending_events: self.calendar.len(),
        }
    }

    /// Enables trace recording (disabled by default for speed).
    pub fn enable_tracing(&mut self) {
        self.trace.set_enabled(true);
    }

    /// Turns on telemetry collection (metrics + timeline spans) and
    /// returns the shared [`Observe`] handle.
    ///
    /// Disabled by default: every instrumentation site then costs one
    /// branch — no locks, no allocation. Components capture the handle
    /// when they start (e.g. a coordinated platform at
    /// `start`), so enable observability **before** driving the
    /// simulation. Calling this twice returns the same handle.
    pub fn enable_observability(&mut self) -> Observe {
        if !self.observe.is_enabled() {
            self.observe = Observe::enabled();
        }
        self.observe.clone()
    }

    /// The telemetry handle (disabled unless
    /// [`Simulation::enable_observability`] was called).
    #[must_use]
    pub fn observe(&self) -> &Observe {
        &self.observe
    }

    /// Records a trace event at the current virtual time.
    ///
    /// The detail argument is built eagerly; in hot loops prefer
    /// [`Simulation::trace_with`], which skips detail construction entirely
    /// while tracing is disabled.
    pub fn trace(&mut self, category: &'static str, detail: impl Into<String>) {
        let now = self.now;
        self.trace.record(now, category, detail);
    }

    /// Records a trace event at the current virtual time, building the
    /// detail line lazily (no formatting or allocation when tracing is
    /// disabled).
    pub fn trace_with(&mut self, category: &'static str, detail: impl FnOnce() -> String) {
        let now = self.now;
        self.trace.record_with(now, category, detail);
    }

    /// Read access to the recorded trace.
    #[must_use]
    pub fn trace_log(&self) -> &Trace {
        &self.trace
    }

    /// Takes the recorded trace, leaving an empty one behind.
    pub fn take_trace(&mut self) -> Trace {
        let replacement = if self.trace.is_enabled() {
            Trace::new()
        } else {
            Trace::disabled()
        };
        std::mem::replace(&mut self.trace, replacement)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;
    use std::rc::Rc;

    #[test]
    fn events_execute_in_time_order() {
        let mut sim = Simulation::new(0);
        let order = Rc::new(RefCell::new(Vec::new()));
        for (label, ms) in [("c", 30u64), ("a", 10), ("b", 20)] {
            let order = order.clone();
            sim.schedule_at(Instant::from_millis(ms), move |_| {
                order.borrow_mut().push(label);
            });
        }
        sim.run_to_completion();
        assert_eq!(*order.borrow(), vec!["a", "b", "c"]);
        assert_eq!(sim.now(), Instant::from_millis(30));
    }

    #[test]
    fn equal_times_execute_fifo() {
        let mut sim = Simulation::new(0);
        let order = Rc::new(RefCell::new(Vec::new()));
        for label in ["first", "second", "third"] {
            let order = order.clone();
            sim.schedule_at(Instant::from_millis(5), move |_| {
                order.borrow_mut().push(label);
            });
        }
        sim.run_to_completion();
        assert_eq!(*order.borrow(), vec!["first", "second", "third"]);
    }

    #[test]
    fn events_can_schedule_events() {
        let mut sim = Simulation::new(0);
        let count = Rc::new(RefCell::new(0u32));
        fn tick(sim: &mut Simulation, count: Rc<RefCell<u32>>, remaining: u32) {
            *count.borrow_mut() += 1;
            if remaining > 0 {
                sim.schedule_in(Duration::from_millis(1), move |sim| {
                    tick(sim, count, remaining - 1)
                });
            }
        }
        let c = count.clone();
        sim.schedule_at(Instant::EPOCH, move |sim| tick(sim, c, 9));
        sim.run_to_completion();
        assert_eq!(*count.borrow(), 10);
        assert_eq!(sim.now(), Instant::from_millis(9));
    }

    #[test]
    fn run_until_advances_time_even_without_events() {
        let mut sim = Simulation::new(0);
        sim.run_until(Instant::from_secs(5));
        assert_eq!(sim.now(), Instant::from_secs(5));
    }

    #[test]
    fn run_until_leaves_later_events_pending() {
        let mut sim = Simulation::new(0);
        let fired = Rc::new(RefCell::new(false));
        let f = fired.clone();
        sim.schedule_at(Instant::from_secs(10), move |_| *f.borrow_mut() = true);
        sim.run_until(Instant::from_secs(5));
        assert!(!*fired.borrow());
        assert_eq!(sim.stats().pending_events, 1);
        sim.run_until(Instant::from_secs(10));
        assert!(*fired.borrow());
    }

    #[test]
    #[should_panic(expected = "cannot schedule into the past")]
    fn scheduling_into_past_panics() {
        let mut sim = Simulation::new(0);
        sim.schedule_at(Instant::from_secs(1), |sim| {
            sim.schedule_at(Instant::EPOCH, |_| {});
        });
        sim.run_to_completion();
    }

    #[test]
    fn request_stop_halts_run() {
        let mut sim = Simulation::new(0);
        let count = Rc::new(RefCell::new(0));
        for i in 0..10u64 {
            let count = count.clone();
            sim.schedule_at(Instant::from_millis(i), move |sim| {
                *count.borrow_mut() += 1;
                if i == 4 {
                    sim.request_stop();
                }
            });
        }
        sim.run_to_completion();
        assert_eq!(*count.borrow(), 5);
        // A subsequent run resumes.
        sim.run_to_completion();
        assert_eq!(*count.borrow(), 10);
    }

    #[test]
    fn run_events_bounds_execution() {
        let mut sim = Simulation::new(0);
        for i in 0..10u64 {
            sim.schedule_at(Instant::from_millis(i), |_| {});
        }
        assert_eq!(sim.run_events(3), 3);
        assert_eq!(sim.stats().pending_events, 7);
        assert_eq!(sim.run_events(100), 7);
    }

    #[test]
    fn forked_rng_reproducible_across_sims() {
        let sim_a = Simulation::new(7);
        let sim_b = Simulation::new(7);
        let mut ra = sim_a.fork_rng("net");
        let mut rb = sim_b.fork_rng("net");
        assert_eq!(ra.next_u64(), rb.next_u64());
        let mut rc = sim_a.fork_rng("other");
        assert_ne!(ra.next_u64(), rc.next_u64());
    }

    #[test]
    fn trace_with_skips_detail_construction_when_disabled() {
        let mut sim = Simulation::new(0);
        // Tracing off (the default): the closure must never run.
        sim.trace_with("evt", || {
            unreachable!("detail built despite disabled trace")
        });
        assert!(sim.trace_log().is_empty());
        sim.enable_tracing();
        sim.trace_with("evt", || format!("n={}", 7));
        assert_eq!(sim.trace_log().len(), 1);
    }

    #[test]
    fn tracing_records_at_current_time() {
        let mut sim = Simulation::new(0);
        sim.enable_tracing();
        sim.schedule_at(Instant::from_millis(3), |sim| {
            sim.trace("test", "hello");
        });
        sim.run_to_completion();
        let trace = sim.trace_log();
        assert_eq!(trace.len(), 1);
        assert_eq!(trace.iter().next().unwrap().at, Instant::from_millis(3));
    }

    #[test]
    fn identical_seeds_identical_traces() {
        fn run(seed: u64) -> u64 {
            let mut sim = Simulation::new(seed);
            sim.enable_tracing();
            let mut rng = sim.fork_rng("jitter");
            for i in 0..100u64 {
                let d = rng.uniform_duration(Duration::ZERO, Duration::from_millis(10));
                sim.schedule_in(d * (i as i64 + 1), move |sim| {
                    sim.trace_with("evt", || format!("event {i}"));
                });
            }
            sim.run_to_completion();
            sim.trace_log().fingerprint()
        }
        assert_eq!(run(1), run(1));
        assert_ne!(run(1), run(2));
    }
}
