//! Deterministic pseudo-random number generation for the simulator.
//!
//! Seeded determinism is the backbone of this reproduction: every stochastic
//! quantity (network latency, thread-dispatch jitter, callback phase
//! offsets, clock skew) is drawn from a [`SimRng`] stream derived from a
//! single master seed, so an experiment instance is fully described by
//! `(seed, parameters)` and can be replayed bit-identically.
//!
//! The generator is xoshiro256\*\* (Blackman & Vigna), seeded through
//! SplitMix64, implemented locally (~100 lines) instead of pulling in the
//! `rand` crate so that the stream definition can never change underneath
//! the experiments (see DESIGN.md §2 for the dependency rationale).

use dear_time::Duration;

/// SplitMix64 step; used for seeding and for deriving sub-streams.
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// FNV-1a hash of a label, used to derive named sub-streams.
#[inline]
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xCBF2_9CE4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// A deterministic xoshiro256\*\* pseudo-random number generator.
///
/// # Examples
///
/// ```
/// use dear_sim::SimRng;
///
/// let mut a = SimRng::seed_from_u64(42);
/// let mut b = SimRng::seed_from_u64(42);
/// assert_eq!(a.next_u64(), b.next_u64());
///
/// // Named sub-streams are independent but reproducible.
/// let mut net = SimRng::seed_from_u64(42).fork("network");
/// let mut net2 = SimRng::seed_from_u64(42).fork("network");
/// assert_eq!(net.next_u64(), net2.next_u64());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SimRng {
    s: [u64; 4],
    /// Cached second output of the Box–Muller transform.
    gauss_spare: Option<f64>,
}

impl SimRng {
    /// Creates a generator from a 64-bit seed via SplitMix64 expansion.
    #[must_use]
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        SimRng {
            s,
            gauss_spare: None,
        }
    }

    /// Derives an independent, reproducible sub-stream identified by `label`.
    ///
    /// Forking is how simulation components get their own randomness without
    /// coupling their draw order: inserting an extra draw in one component
    /// does not perturb any other component's stream.
    #[must_use]
    pub fn fork(&self, label: &str) -> SimRng {
        let mixed = self.s[0]
            ^ self.s[1].rotate_left(17)
            ^ self.s[2].rotate_left(31)
            ^ self.s[3].rotate_left(47)
            ^ fnv1a(label.as_bytes());
        SimRng::seed_from_u64(mixed)
    }

    /// Derives an independent sub-stream identified by an index.
    #[must_use]
    pub fn fork_indexed(&self, label: &str, index: u64) -> SimRng {
        let mixed = self.s[0]
            ^ self.s[2].rotate_left(29)
            ^ fnv1a(label.as_bytes())
            ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        SimRng::seed_from_u64(mixed)
    }

    /// Returns the next raw 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Returns a uniformly distributed `f64` in `[0, 1)`.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        // 53 high-quality bits -> [0, 1).
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns a uniformly distributed integer in `[0, bound)`.
    ///
    /// Uses Lemire's multiply-shift rejection method for an unbiased result.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn next_u64_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        loop {
            let x = self.next_u64();
            let m = (x as u128).wrapping_mul(bound as u128);
            let low = m as u64;
            if low >= bound {
                return (m >> 64) as u64;
            }
            // Rejection zone; compute threshold once we are in it.
            let threshold = bound.wrapping_neg() % bound;
            if low >= threshold {
                return (m >> 64) as u64;
            }
        }
    }

    /// Returns a uniformly distributed integer in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range");
        lo + self.next_u64_below(hi - lo)
    }

    /// Returns a uniformly distributed `usize` in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn next_usize_below(&mut self, bound: usize) -> usize {
        self.next_u64_below(bound as u64) as usize
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.next_f64() < p
        }
    }

    /// Returns a uniformly distributed duration in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn uniform_duration(&mut self, lo: Duration, hi: Duration) -> Duration {
        assert!(lo < hi, "empty duration range");
        let span = (hi.as_nanos() - lo.as_nanos()) as u64;
        Duration::from_nanos(lo.as_nanos() + self.next_u64_below(span) as i64)
    }

    /// Returns a standard-normal sample (Box–Muller, cached pair).
    pub fn gaussian(&mut self) -> f64 {
        if let Some(spare) = self.gauss_spare.take() {
            return spare;
        }
        loop {
            let u1 = self.next_f64();
            let u2 = self.next_f64();
            if u1 <= f64::MIN_POSITIVE {
                continue;
            }
            let r = (-2.0 * u1.ln()).sqrt();
            let theta = 2.0 * std::f64::consts::PI * u2;
            self.gauss_spare = Some(r * theta.sin());
            return r * theta.cos();
        }
    }

    /// Returns a normally distributed duration with the given mean and
    /// standard deviation, clamped below at `floor`.
    pub fn normal_duration(
        &mut self,
        mean: Duration,
        std_dev: Duration,
        floor: Duration,
    ) -> Duration {
        let sample = mean.as_nanos() as f64 + self.gaussian() * std_dev.as_nanos() as f64;
        let clamped = sample.max(floor.as_nanos() as f64);
        Duration::from_nanos(clamped as i64)
    }

    /// Returns an exponentially distributed duration with the given mean.
    ///
    /// # Panics
    ///
    /// Panics if `mean` is not positive.
    pub fn exponential_duration(&mut self, mean: Duration) -> Duration {
        assert!(mean > Duration::ZERO, "mean must be positive");
        let u = 1.0 - self.next_f64(); // (0, 1]
        let sample = -(u.ln()) * mean.as_nanos() as f64;
        Duration::from_nanos(sample as i64)
    }

    /// Shuffles a slice in place (Fisher–Yates).
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.next_usize_below(i + 1);
            slice.swap(i, j);
        }
    }
}

/// A parameterized latency/jitter distribution used across the simulator.
///
/// # Examples
///
/// ```
/// use dear_sim::{LatencyModel, SimRng};
/// use dear_time::Duration;
///
/// let model = LatencyModel::uniform(Duration::from_micros(100), Duration::from_micros(500));
/// let mut rng = SimRng::seed_from_u64(7);
/// let sample = model.sample(&mut rng);
/// assert!(sample >= Duration::from_micros(100) && sample < Duration::from_micros(500));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub enum LatencyModel {
    /// A fixed delay.
    Constant(Duration),
    /// Uniform in `[min, max)`.
    Uniform {
        /// Inclusive lower bound.
        min: Duration,
        /// Exclusive upper bound.
        max: Duration,
    },
    /// Normal with mean/std-dev, clamped below at `min`.
    Normal {
        /// Mean of the distribution.
        mean: Duration,
        /// Standard deviation.
        std_dev: Duration,
        /// Hard lower clamp (physical delays cannot be negative).
        min: Duration,
    },
}

impl LatencyModel {
    /// Convenience constructor for a constant delay.
    #[must_use]
    pub fn constant(d: Duration) -> Self {
        LatencyModel::Constant(d)
    }

    /// Convenience constructor for a uniform delay.
    ///
    /// # Panics
    ///
    /// Panics if `min >= max`.
    #[must_use]
    pub fn uniform(min: Duration, max: Duration) -> Self {
        assert!(min < max, "uniform latency requires min < max");
        LatencyModel::Uniform { min, max }
    }

    /// Convenience constructor for a truncated-normal delay.
    #[must_use]
    pub fn normal(mean: Duration, std_dev: Duration, min: Duration) -> Self {
        LatencyModel::Normal { mean, std_dev, min }
    }

    /// Draws one sample from the model.
    pub fn sample(&self, rng: &mut SimRng) -> Duration {
        match *self {
            LatencyModel::Constant(d) => d,
            LatencyModel::Uniform { min, max } => rng.uniform_duration(min, max),
            LatencyModel::Normal { mean, std_dev, min } => rng.normal_duration(mean, std_dev, min),
        }
    }

    /// A conservative upper bound on samples, where one exists.
    ///
    /// For the normal model this returns mean + 5σ, which the simulator
    /// treats as the "engineering worst case" (the paper's `L` is likewise
    /// an estimated upper bound, not a hard guarantee).
    #[must_use]
    pub fn upper_bound(&self) -> Duration {
        match *self {
            LatencyModel::Constant(d) => d,
            LatencyModel::Uniform { max, .. } => max,
            LatencyModel::Normal { mean, std_dev, .. } => mean + std_dev * 5,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seed_from_u64(123);
        let mut b = SimRng::seed_from_u64(123);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::seed_from_u64(1);
        let mut b = SimRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4, "streams should diverge");
    }

    #[test]
    fn forked_streams_are_reproducible_and_independent() {
        let root = SimRng::seed_from_u64(99);
        let mut f1 = root.fork("alpha");
        let mut f2 = root.fork("beta");
        let mut f1b = root.fork("alpha");
        assert_eq!(f1.next_u64(), f1b.next_u64());
        assert_ne!(f1.next_u64(), f2.next_u64());
        let mut i0 = root.fork_indexed("swc", 0);
        let mut i1 = root.fork_indexed("swc", 1);
        assert_ne!(i0.next_u64(), i1.next_u64());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = SimRng::seed_from_u64(5);
        for _ in 0..10_000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn bounded_draws_stay_in_bounds() {
        let mut rng = SimRng::seed_from_u64(7);
        for bound in [1u64, 2, 3, 10, 1000, u64::MAX / 2] {
            for _ in 0..200 {
                assert!(rng.next_u64_below(bound) < bound);
            }
        }
        for _ in 0..200 {
            let v = rng.range_u64(10, 20);
            assert!((10..20).contains(&v));
        }
    }

    #[test]
    fn bounded_draw_roughly_uniform() {
        let mut rng = SimRng::seed_from_u64(11);
        let mut counts = [0usize; 10];
        let n = 100_000;
        for _ in 0..n {
            counts[rng.next_u64_below(10) as usize] += 1;
        }
        for &c in &counts {
            let expected = n / 10;
            assert!(
                (c as i64 - expected as i64).abs() < (expected / 10) as i64,
                "bucket count {c} too far from {expected}"
            );
        }
    }

    #[test]
    fn gaussian_moments() {
        let mut rng = SimRng::seed_from_u64(13);
        let n = 100_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.gaussian()).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean} too far from 0");
        assert!((var - 1.0).abs() < 0.05, "variance {var} too far from 1");
    }

    #[test]
    fn uniform_duration_in_range() {
        let mut rng = SimRng::seed_from_u64(17);
        let lo = Duration::from_micros(10);
        let hi = Duration::from_micros(50);
        for _ in 0..1000 {
            let d = rng.uniform_duration(lo, hi);
            assert!(d >= lo && d < hi);
        }
    }

    #[test]
    fn normal_duration_clamps_at_floor() {
        let mut rng = SimRng::seed_from_u64(19);
        let floor = Duration::from_micros(1);
        for _ in 0..1000 {
            let d = rng.normal_duration(Duration::from_micros(2), Duration::from_micros(50), floor);
            assert!(d >= floor);
        }
    }

    #[test]
    fn exponential_duration_mean() {
        let mut rng = SimRng::seed_from_u64(23);
        let mean = Duration::from_millis(10);
        let n = 50_000;
        let total: i64 = (0..n)
            .map(|_| rng.exponential_duration(mean).as_nanos())
            .sum();
        let observed = total / n;
        let expected = mean.as_nanos();
        assert!(
            (observed - expected).abs() < expected / 10,
            "observed mean {observed} vs expected {expected}"
        );
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = SimRng::seed_from_u64(29);
        let mut v: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn latency_models_sample_within_bounds() {
        let mut rng = SimRng::seed_from_u64(31);
        let c = LatencyModel::constant(Duration::from_millis(1));
        assert_eq!(c.sample(&mut rng), Duration::from_millis(1));
        let u = LatencyModel::uniform(Duration::from_millis(1), Duration::from_millis(2));
        for _ in 0..100 {
            let s = u.sample(&mut rng);
            assert!(s >= Duration::from_millis(1) && s < Duration::from_millis(2));
            assert!(s <= u.upper_bound());
        }
        let n = LatencyModel::normal(
            Duration::from_millis(1),
            Duration::from_micros(100),
            Duration::ZERO,
        );
        for _ in 0..100 {
            assert!(n.sample(&mut rng) >= Duration::ZERO);
        }
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn zero_bound_panics() {
        SimRng::seed_from_u64(1).next_u64_below(0);
    }
}
