//! Per-platform virtual clocks with bounded skew and drift.
//!
//! AUTOSAR AP specifies synchronized time across platforms with a bounded
//! synchronization error `E` (the paper cites the AP time-sync spec and
//! uses `E` in the safe-to-process bound `t + D + L + E`). We model each
//! platform's local clock as an affine function of global "true" simulation
//! time:
//!
//! ```text
//! local(t) = t + offset + t * drift_ppb / 1e9
//! ```
//!
//! A [`VirtualClock`] is invertible, so a runtime that wants to act when its
//! *local* clock shows `g` can compute the true simulation time at which
//! that happens. [`ClockModel`] samples clocks whose offsets stay within a
//! configured error bound, mirroring a deployed time-sync daemon.

use crate::rng::SimRng;
use dear_time::{Duration, Instant};

/// An affine mapping from global (true) time to a platform-local clock.
///
/// # Examples
///
/// ```
/// use dear_sim::VirtualClock;
/// use dear_time::{Duration, Instant};
///
/// // A clock running 100µs ahead with +50ppm drift.
/// let clock = VirtualClock::new(Duration::from_micros(100), 50_000);
/// let t = Instant::from_secs(10);
/// let local = clock.local_time(t);
/// assert!(local > t);
/// // The mapping is invertible (to within 1 ns of integer rounding).
/// let back = clock.true_time_at_local(local);
/// let err = if back > t { back - t } else { t - back };
/// assert!(err <= Duration::from_nanos(1));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VirtualClock {
    offset: Duration,
    drift_ppb: i64,
}

impl Default for VirtualClock {
    fn default() -> Self {
        Self::ideal()
    }
}

impl VirtualClock {
    /// A perfect clock: local time equals true time.
    #[must_use]
    pub const fn ideal() -> Self {
        VirtualClock {
            offset: Duration::ZERO,
            drift_ppb: 0,
        }
    }

    /// Creates a clock with a fixed offset and a drift rate in parts
    /// per billion (ppb). Positive drift runs fast.
    ///
    /// # Panics
    ///
    /// Panics if `drift_ppb` is not in `(-10^9, 10^9)` (a clock cannot run
    /// backwards or at more than double speed in this model).
    #[must_use]
    pub fn new(offset: Duration, drift_ppb: i64) -> Self {
        assert!(
            drift_ppb > -1_000_000_000 && drift_ppb < 1_000_000_000,
            "drift out of modelled range: {drift_ppb} ppb"
        );
        VirtualClock { offset, drift_ppb }
    }

    /// Creates a clock with a fixed offset and no drift.
    #[must_use]
    pub fn with_offset(offset: Duration) -> Self {
        VirtualClock::new(offset, 0)
    }

    /// The configured offset.
    #[must_use]
    pub fn offset(&self) -> Duration {
        self.offset
    }

    /// The configured drift in parts per billion.
    #[must_use]
    pub fn drift_ppb(&self) -> i64 {
        self.drift_ppb
    }

    /// Maps true simulation time to this platform's local clock reading.
    ///
    /// # Panics
    ///
    /// Panics if the resulting local time would precede the local epoch.
    #[must_use]
    pub fn local_time(&self, true_time: Instant) -> Instant {
        let t = true_time.as_nanos() as i128;
        let drift = t * self.drift_ppb as i128 / 1_000_000_000;
        let local = t + self.offset.as_nanos() as i128 + drift;
        assert!(
            local >= 0,
            "local clock before epoch: read clocks (and start platforms) only at \
             true times later than the worst-case negative clock offset"
        );
        Instant::from_nanos(local as u64)
    }

    /// Inverse mapping: the true time at which the local clock shows `local`.
    ///
    /// Exact to within 1 ns of integer rounding, verified by property tests.
    #[must_use]
    pub fn true_time_at_local(&self, local: Instant) -> Instant {
        let l = local.as_nanos() as i128 - self.offset.as_nanos() as i128;
        // local = t * (1e9 + ppb) / 1e9 + offset  =>  t = (local-offset)*1e9/(1e9+ppb)
        let denom = 1_000_000_000i128 + self.drift_ppb as i128;
        let t = l * 1_000_000_000 / denom;
        Instant::from_nanos(t.max(0) as u64)
    }

    /// An upper bound on `|local(t) - t|` for `t` in `[0, horizon]`.
    #[must_use]
    pub fn max_error_within(&self, horizon: Instant) -> Duration {
        let drift_part =
            horizon.as_nanos() as i128 * self.drift_ppb.unsigned_abs() as i128 / 1_000_000_000;
        Duration::from_nanos(self.offset.as_nanos().unsigned_abs() as i64 + drift_part as i64)
    }
}

/// A sampler for platform clocks whose error stays within a bound `E`.
///
/// This stands in for AP's synchronized time base: after time sync, every
/// platform clock is within `max_offset` of true time, with residual drift
/// below `max_drift_ppb`.
///
/// # Examples
///
/// ```
/// use dear_sim::{ClockModel, SimRng};
/// use dear_time::{Duration, Instant};
///
/// let model = ClockModel::new(Duration::from_micros(500), 10_000);
/// let mut rng = SimRng::seed_from_u64(1);
/// let clock = model.sample(&mut rng);
/// assert!(clock.offset().abs() <= Duration::from_micros(500));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClockModel {
    max_offset: Duration,
    max_drift_ppb: i64,
}

impl ClockModel {
    /// A model in which clocks are perfect (`E = 0`).
    #[must_use]
    pub const fn perfect() -> Self {
        ClockModel {
            max_offset: Duration::ZERO,
            max_drift_ppb: 0,
        }
    }

    /// Creates a model with offsets in `[-max_offset, max_offset]` and
    /// drift in `[-max_drift_ppb, max_drift_ppb]`.
    ///
    /// # Panics
    ///
    /// Panics if `max_offset` is negative.
    #[must_use]
    pub fn new(max_offset: Duration, max_drift_ppb: i64) -> Self {
        assert!(!max_offset.is_negative(), "max_offset must be non-negative");
        ClockModel {
            max_offset,
            max_drift_ppb: max_drift_ppb.abs(),
        }
    }

    /// The bound on clock offset (the paper's `E` when drift is zero).
    #[must_use]
    pub fn max_offset(&self) -> Duration {
        self.max_offset
    }

    /// Draws a clock satisfying the model's bounds.
    pub fn sample(&self, rng: &mut SimRng) -> VirtualClock {
        let offset = if self.max_offset.is_zero() {
            Duration::ZERO
        } else {
            rng.uniform_duration(-self.max_offset, self.max_offset)
        };
        let drift = if self.max_drift_ppb == 0 {
            0
        } else {
            rng.range_u64(0, 2 * self.max_drift_ppb as u64 + 1) as i64 - self.max_drift_ppb
        };
        VirtualClock::new(offset, drift)
    }

    /// A bound on the worst-case clock error over a horizon, i.e. the `E`
    /// to plug into the safe-to-process offset `t + D + L + E`.
    #[must_use]
    pub fn error_bound(&self, horizon: Instant) -> Duration {
        let drift_part = horizon.as_nanos() as i128 * self.max_drift_ppb as i128 / 1_000_000_000;
        self.max_offset + Duration::from_nanos(drift_part as i64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn ideal_clock_is_identity() {
        let c = VirtualClock::ideal();
        let t = Instant::from_secs(1234);
        assert_eq!(c.local_time(t), t);
        assert_eq!(c.true_time_at_local(t), t);
    }

    #[test]
    fn offset_shifts_local_time() {
        let c = VirtualClock::with_offset(Duration::from_millis(3));
        let t = Instant::from_secs(1);
        assert_eq!(c.local_time(t), t + Duration::from_millis(3));
        assert_eq!(c.true_time_at_local(t + Duration::from_millis(3)), t);
    }

    #[test]
    fn negative_offset_shifts_back() {
        let c = VirtualClock::with_offset(Duration::from_millis(-3));
        let t = Instant::from_secs(1);
        assert_eq!(c.local_time(t), t - Duration::from_millis(3));
    }

    #[test]
    fn drift_accumulates() {
        // +1000 ppm = 1ms per second.
        let c = VirtualClock::new(Duration::ZERO, 1_000_000);
        let t = Instant::from_secs(10);
        assert_eq!(c.local_time(t), t + Duration::from_millis(10));
    }

    #[test]
    fn max_error_bound_holds() {
        let c = VirtualClock::new(Duration::from_micros(200), 500_000);
        let horizon = Instant::from_secs(100);
        let bound = c.max_error_within(horizon);
        for s in [0u64, 1, 10, 50, 100] {
            let t = Instant::from_secs(s);
            let local = c.local_time(t);
            let err = if local > t { local - t } else { t - local };
            assert!(err <= bound, "error {err} exceeds bound {bound} at {t}");
        }
    }

    #[test]
    fn model_samples_within_bounds() {
        let model = ClockModel::new(Duration::from_micros(500), 20_000);
        let mut rng = SimRng::seed_from_u64(3);
        for _ in 0..100 {
            let c = model.sample(&mut rng);
            assert!(c.offset().abs() <= Duration::from_micros(500));
            assert!(c.drift_ppb().abs() <= 20_000);
        }
    }

    #[test]
    fn perfect_model_yields_ideal_clocks() {
        let mut rng = SimRng::seed_from_u64(3);
        let c = ClockModel::perfect().sample(&mut rng);
        assert_eq!(c, VirtualClock::ideal());
        assert_eq!(
            ClockModel::perfect().error_bound(Instant::from_secs(1000)),
            Duration::ZERO
        );
    }

    #[test]
    fn error_bound_covers_sampled_clocks() {
        let model = ClockModel::new(Duration::from_micros(100), 50_000);
        let horizon = Instant::from_secs(60);
        let bound = model.error_bound(horizon);
        let mut rng = SimRng::seed_from_u64(9);
        for _ in 0..50 {
            let c = model.sample(&mut rng);
            assert!(c.max_error_within(horizon) <= bound);
        }
    }

    proptest! {
        #[test]
        fn prop_roundtrip_within_1ns(
            offset_us in -100_000i64..100_000,
            drift in -500_000i64..500_000,
            t in 0u64..(1u64 << 45),
        ) {
            let c = VirtualClock::new(Duration::from_micros(offset_us), drift);
            let true_t = Instant::from_nanos(t + 200_000_000_000); // keep local >= 0
            let local = c.local_time(true_t);
            let back = c.true_time_at_local(local);
            let err = if back > true_t { back - true_t } else { true_t - back };
            prop_assert!(err <= Duration::from_nanos(2), "roundtrip error {}", err);
        }

        #[test]
        fn prop_local_time_monotone(
            offset_us in -100_000i64..100_000,
            drift in -500_000i64..500_000,
            a in 0u64..(1u64 << 44),
            b in 0u64..(1u64 << 44),
        ) {
            let c = VirtualClock::new(Duration::from_micros(offset_us), drift);
            let base = 200_000_000_000u64;
            let (ta, tb) = (Instant::from_nanos(base + a), Instant::from_nanos(base + b));
            if ta <= tb {
                prop_assert!(c.local_time(ta) <= c.local_time(tb));
            } else {
                prop_assert!(c.local_time(ta) >= c.local_time(tb));
            }
        }
    }
}
