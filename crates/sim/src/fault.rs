//! Deterministic fault injection: seeded, logical-time-scheduled link
//! degradation campaigns.
//!
//! The paper's determinism claim is only interesting if it survives the
//! cases the platform is actually built for — messages that arrive late,
//! out of order, or not at all (§IV.B discusses exactly these STP
//! violations). A [`FaultPlan`] makes failure itself a deterministic,
//! replayable scenario: a campaign of loss bursts, latency spikes, link
//! kills/heals and partitions, each pinned to a virtual instant and
//! applied to the simulated [`Network`](crate::NetworkHandle) through
//! one-shot calendar events. Two runs with the same seed and the same
//! plan produce byte-identical fault sequences — every application is
//! recorded in the simulation [`Trace`](crate::Trace) — so a failover
//! test can assert on exact tags rather than sleeping and hoping.
//!
//! Plans are built either explicitly (each event spelled out) or
//! generated from a [`SimRng`] stream with [`FaultPlan::randomized`],
//! which is how a property test sweeps fault shapes without giving up
//! reproducibility: the campaign is a pure function of `(seed, labels)`.
//!
//! # Examples
//!
//! ```
//! use dear_sim::{FaultPlan, LinkConfig, NetworkHandle, NodeId, Simulation};
//! use dear_time::{Duration, Instant};
//!
//! let mut sim = Simulation::new(3);
//! let net = NetworkHandle::new(LinkConfig::default(), sim.fork_rng("net"));
//!
//! let mut plan = FaultPlan::new();
//! plan.kill_link(Instant::from_millis(10), NodeId(1), NodeId(2));
//! plan.heal_link(Instant::from_millis(30), NodeId(1), NodeId(2));
//! plan.apply(&mut sim, &net);
//!
//! sim.run_until(Instant::from_millis(20));
//! assert!(!net.link_is_up(NodeId(1), NodeId(2)));
//! sim.run_until(Instant::from_millis(40));
//! assert!(net.link_is_up(NodeId(1), NodeId(2)));
//! ```

use crate::net::{NetworkHandle, NodeId};
use crate::rng::{LatencyModel, SimRng};
use crate::sim::Simulation;
use dear_time::{Duration, Instant};
use std::fmt;

/// One kind of link degradation a [`FaultPlan`] can schedule.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultAction {
    /// Overrides the link's loss probability with `probability` for
    /// `duration`, then restores the configured value.
    LossBurst {
        /// Drop probability during the burst.
        probability: f64,
        /// How long the burst lasts.
        duration: Duration,
    },
    /// Overrides the link's latency model with `model` for `duration`,
    /// then restores the configured model. The *assumed* bound `L`
    /// reported by `latency_bound` is untouched, so a spike beyond it
    /// surfaces upstream as observable STP violations.
    LatencySpike {
        /// Latency model during the spike.
        model: LatencyModel,
        /// How long the spike lasts.
        duration: Duration,
    },
    /// Takes the link down until a matching [`FaultAction::LinkUp`].
    LinkDown,
    /// Brings a downed link back up.
    LinkUp,
    /// Crashes a whole node (the event's `src`; `dst` is ignored): its
    /// sends are swallowed until a matching [`FaultAction::NodeRestore`],
    /// and every [`NetworkHandle::on_node_event`] observer fires — which
    /// is how a recovery harness drives a platform's crash/recover cycle
    /// from a seeded plan.
    NodeCrash,
    /// Restores a crashed node (the event's `src`; `dst` is ignored).
    NodeRestore,
}

impl fmt::Display for FaultAction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultAction::LossBurst {
                probability,
                duration,
            } => write!(f, "loss-burst p={probability} for {duration}"),
            FaultAction::LatencySpike { duration, .. } => {
                write!(f, "latency-spike for {duration}")
            }
            FaultAction::LinkDown => f.write_str("link-down"),
            FaultAction::LinkUp => f.write_str("link-up"),
            FaultAction::NodeCrash => f.write_str("node-crash"),
            FaultAction::NodeRestore => f.write_str("node-restore"),
        }
    }
}

/// One scheduled fault: an action applied to a directed link at a
/// virtual instant.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultEvent {
    /// When the fault strikes (true simulation time).
    pub at: Instant,
    /// Sending side of the affected directed link.
    pub src: NodeId,
    /// Receiving side of the affected directed link.
    pub dst: NodeId,
    /// What happens to the link.
    pub action: FaultAction,
}

/// A deterministic campaign of link faults.
///
/// The plan is inert data until [`FaultPlan::apply`] schedules its
/// events on a simulation; applying the same plan to the same seeded
/// simulation replays the identical fault sequence.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// An empty plan.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds an arbitrary fault event.
    pub fn push(&mut self, event: FaultEvent) -> &mut Self {
        self.events.push(event);
        self
    }

    /// Schedules a loss burst on the directed link `src -> dst`.
    ///
    /// # Panics
    ///
    /// Panics if `probability` is outside `[0, 1]`.
    pub fn loss_burst(
        &mut self,
        at: Instant,
        src: NodeId,
        dst: NodeId,
        probability: f64,
        duration: Duration,
    ) -> &mut Self {
        assert!(
            (0.0..=1.0).contains(&probability),
            "probability out of range"
        );
        self.push(FaultEvent {
            at,
            src,
            dst,
            action: FaultAction::LossBurst {
                probability,
                duration,
            },
        })
    }

    /// Schedules a latency spike on the directed link `src -> dst`.
    pub fn latency_spike(
        &mut self,
        at: Instant,
        src: NodeId,
        dst: NodeId,
        model: LatencyModel,
        duration: Duration,
    ) -> &mut Self {
        self.push(FaultEvent {
            at,
            src,
            dst,
            action: FaultAction::LatencySpike { model, duration },
        })
    }

    /// Schedules a permanent kill of the directed link `src -> dst`
    /// (until an explicit [`FaultPlan::heal_link`]).
    pub fn kill_link(&mut self, at: Instant, src: NodeId, dst: NodeId) -> &mut Self {
        self.push(FaultEvent {
            at,
            src,
            dst,
            action: FaultAction::LinkDown,
        })
    }

    /// Schedules a heal of the directed link `src -> dst`.
    pub fn heal_link(&mut self, at: Instant, src: NodeId, dst: NodeId) -> &mut Self {
        self.push(FaultEvent {
            at,
            src,
            dst,
            action: FaultAction::LinkUp,
        })
    }

    /// Schedules a crash of a whole node (until an explicit
    /// [`FaultPlan::restore_node`]).
    pub fn crash_node(&mut self, at: Instant, node: NodeId) -> &mut Self {
        self.push(FaultEvent {
            at,
            src: node,
            dst: node,
            action: FaultAction::NodeCrash,
        })
    }

    /// Schedules the restoration of a crashed node.
    pub fn restore_node(&mut self, at: Instant, node: NodeId) -> &mut Self {
        self.push(FaultEvent {
            at,
            src: node,
            dst: node,
            action: FaultAction::NodeRestore,
        })
    }

    /// Schedules a symmetric partition between `a` and `b`: both
    /// directions go down at `at` and heal after `duration`.
    pub fn partition(
        &mut self,
        at: Instant,
        a: NodeId,
        b: NodeId,
        duration: Duration,
    ) -> &mut Self {
        self.kill_link(at, a, b);
        self.kill_link(at, b, a);
        self.heal_link(at + duration, a, b);
        self.heal_link(at + duration, b, a)
    }

    /// Generates a seed-driven campaign: `count` faults on the given
    /// directed links, uniformly spread over `(0, horizon)`, drawn from
    /// the full action repertoire (loss bursts, latency spikes and
    /// bounded partitions).
    ///
    /// The plan is a pure function of the RNG stream, so forking the
    /// simulation's master seed (`sim.fork_rng("faults")`) makes the
    /// campaign part of the experiment's `(seed, parameters)` identity.
    ///
    /// # Panics
    ///
    /// Panics if `links` is empty or `horizon` is not positive.
    #[must_use]
    pub fn randomized(
        rng: &mut SimRng,
        links: &[(NodeId, NodeId)],
        horizon: Duration,
        count: usize,
    ) -> Self {
        assert!(!links.is_empty(), "randomized plan needs links");
        assert!(horizon > Duration::ZERO, "horizon must be positive");
        let mut plan = FaultPlan::new();
        for _ in 0..count {
            let (src, dst) = links[rng.next_usize_below(links.len())];
            let at = Instant::EPOCH + rng.uniform_duration(Duration::from_nanos(1), horizon);
            // Fault durations are short relative to the horizon so that
            // campaigns overlap rather than serialize.
            let duration = rng.uniform_duration(horizon / 100, horizon / 10);
            match rng.next_u64_below(3) {
                0 => {
                    let p = 0.1 + 0.9 * rng.next_f64();
                    plan.loss_burst(at, src, dst, p, duration);
                }
                1 => {
                    let base = rng.uniform_duration(horizon / 1000, horizon / 100);
                    plan.latency_spike(
                        at,
                        src,
                        dst,
                        LatencyModel::uniform(base, base * 4),
                        duration,
                    );
                }
                _ => {
                    plan.kill_link(at, src, dst);
                    plan.heal_link(at + duration, src, dst);
                }
            }
        }
        plan
    }

    /// The scheduled fault events, in insertion order.
    #[must_use]
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Number of scheduled fault events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the plan schedules no faults.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Schedules every fault of the plan on `sim`, targeting `net`.
    ///
    /// Each application (and each restoration at the end of a bounded
    /// fault) is recorded in the simulation trace under the `"fault"`
    /// category, so trace fingerprints cover the fault sequence itself.
    ///
    /// # Panics
    ///
    /// Panics if any event lies in the simulation's past.
    pub fn apply(&self, sim: &mut Simulation, net: &NetworkHandle) {
        for event in &self.events {
            let net = net.clone();
            let (src, dst, action) = (event.src, event.dst, event.action.clone());
            sim.schedule_at(event.at, move |sim| {
                // Node faults concern one node, not a directed link.
                if matches!(action, FaultAction::NodeCrash | FaultAction::NodeRestore) {
                    sim.trace_with("fault", || format!("{src} {action}"));
                } else {
                    sim.trace_with("fault", || format!("{src}->{dst} {action}"));
                }
                match action {
                    FaultAction::LossBurst {
                        probability,
                        duration,
                    } => {
                        net.set_drop_override(src, dst, Some(probability));
                        let net = net.clone();
                        sim.schedule_in(duration, move |sim| {
                            sim.trace_with("fault", || format!("{src}->{dst} loss-burst cleared"));
                            net.set_drop_override(src, dst, None);
                        });
                    }
                    FaultAction::LatencySpike { model, duration } => {
                        net.set_latency_override(src, dst, Some(model));
                        let net = net.clone();
                        sim.schedule_in(duration, move |sim| {
                            sim.trace_with("fault", || {
                                format!("{src}->{dst} latency-spike cleared")
                            });
                            net.set_latency_override(src, dst, None);
                        });
                    }
                    FaultAction::LinkDown => net.set_link_up(src, dst, false),
                    FaultAction::LinkUp => net.set_link_up(src, dst, true),
                    FaultAction::NodeCrash => net.set_node_up(sim, src, false),
                    FaultAction::NodeRestore => net.set_node_up(sim, src, true),
                }
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::net::{Frame, LinkConfig};
    use std::cell::RefCell;
    use std::rc::Rc;

    fn frame(src: u16, dst: u16, byte: u8) -> Frame {
        Frame {
            src: NodeId(src),
            dst: NodeId(dst),
            payload: vec![byte].into(),
        }
    }

    #[test]
    fn partition_downs_and_heals_both_directions() {
        let mut sim = Simulation::new(0);
        let net = NetworkHandle::new(
            LinkConfig::ideal(Duration::from_micros(1)),
            sim.fork_rng("net"),
        );
        let mut plan = FaultPlan::new();
        plan.partition(
            Instant::from_millis(5),
            NodeId(1),
            NodeId(2),
            Duration::from_millis(10),
        );
        assert_eq!(plan.len(), 4);
        plan.apply(&mut sim, &net);
        sim.run_until(Instant::from_millis(6));
        assert!(!net.link_is_up(NodeId(1), NodeId(2)));
        assert!(!net.link_is_up(NodeId(2), NodeId(1)));
        sim.run_until(Instant::from_millis(16));
        assert!(net.link_is_up(NodeId(1), NodeId(2)));
        assert!(net.link_is_up(NodeId(2), NodeId(1)));
    }

    #[test]
    fn loss_burst_restores_configured_probability() {
        let mut sim = Simulation::new(1);
        let net = NetworkHandle::new(
            LinkConfig::ideal(Duration::from_micros(1)),
            sim.fork_rng("net"),
        );
        let count = Rc::new(RefCell::new(0u32));
        let sink = count.clone();
        net.set_receiver(NodeId(2), move |_, _| *sink.borrow_mut() += 1);
        let mut plan = FaultPlan::new();
        plan.loss_burst(
            Instant::from_millis(1),
            NodeId(1),
            NodeId(2),
            1.0,
            Duration::from_millis(2),
        );
        plan.apply(&mut sim, &net);
        // During the burst: everything lost.
        sim.run_until(Instant::from_millis(2));
        net.send(&mut sim, frame(1, 2, 0));
        sim.run_until(Instant::from_millis(4));
        assert_eq!(*count.borrow(), 0);
        // After the burst: the configured lossless link is back.
        net.send(&mut sim, frame(1, 2, 1));
        sim.run_to_completion();
        assert_eq!(*count.borrow(), 1);
        assert_eq!(net.stats().dropped, 1);
    }

    #[test]
    fn applications_are_recorded_in_the_trace() {
        let mut sim = Simulation::new(0);
        sim.enable_tracing();
        let net = NetworkHandle::new(LinkConfig::default(), sim.fork_rng("net"));
        let mut plan = FaultPlan::new();
        plan.loss_burst(
            Instant::from_millis(1),
            NodeId(1),
            NodeId(2),
            0.5,
            Duration::from_millis(1),
        );
        plan.kill_link(Instant::from_millis(3), NodeId(1), NodeId(2));
        plan.apply(&mut sim, &net);
        sim.run_to_completion();
        let faults = sim
            .trace_log()
            .events_in("fault")
            .map(crate::TraceEvent::detail_text)
            .collect::<Vec<_>>();
        assert_eq!(
            faults,
            vec![
                "node1->node2 loss-burst p=0.5 for 1ms".to_string(),
                "node1->node2 loss-burst cleared".to_string(),
                "node1->node2 link-down".to_string(),
            ]
        );
    }

    #[test]
    fn node_crash_fires_observers_and_is_traced() {
        let mut sim = Simulation::new(0);
        sim.enable_tracing();
        let net = NetworkHandle::new(
            LinkConfig::ideal(Duration::from_micros(1)),
            sim.fork_rng("net"),
        );
        let events = Rc::new(RefCell::new(Vec::new()));
        let sink = events.clone();
        net.on_node_event(move |sim, node, up| sink.borrow_mut().push((sim.now(), node, up)));
        let mut plan = FaultPlan::new();
        plan.crash_node(Instant::from_millis(2), NodeId(3));
        plan.restore_node(Instant::from_millis(9), NodeId(3));
        plan.apply(&mut sim, &net);
        sim.run_until(Instant::from_millis(5));
        assert!(!net.node_is_up(NodeId(3)));
        sim.run_to_completion();
        assert!(net.node_is_up(NodeId(3)));
        assert_eq!(
            *events.borrow(),
            vec![
                (Instant::from_millis(2), NodeId(3), false),
                (Instant::from_millis(9), NodeId(3), true),
            ]
        );
        let faults = sim
            .trace_log()
            .events_in("fault")
            .map(crate::TraceEvent::detail_text)
            .collect::<Vec<_>>();
        assert_eq!(
            faults,
            vec![
                "node3 node-crash".to_string(),
                "node3 node-restore".to_string()
            ]
        );
    }

    #[test]
    fn randomized_plans_are_reproducible() {
        let links = [(NodeId(1), NodeId(2)), (NodeId(2), NodeId(3))];
        let mut a = SimRng::seed_from_u64(7).fork("faults");
        let mut b = SimRng::seed_from_u64(7).fork("faults");
        let pa = FaultPlan::randomized(&mut a, &links, Duration::from_secs(1), 20);
        let pb = FaultPlan::randomized(&mut b, &links, Duration::from_secs(1), 20);
        assert_eq!(pa, pb);
        assert_eq!(pa.len(), pa.events().len());
        assert!(!pa.is_empty());
        let mut c = SimRng::seed_from_u64(8).fork("faults");
        let pc = FaultPlan::randomized(&mut c, &links, Duration::from_secs(1), 20);
        assert_ne!(pa, pc, "different seeds should differ");
    }
}
