//! Pooled, reference-counted frame buffers — the zero-copy data path.
//!
//! Every layer of the middleware stack (payload serialization, SOME/IP
//! wire assembly, the simulated network, the transactor ports and the
//! coordination channel) moves message bytes in a [`FrameBuf`]: a cheap
//! to clone, immutable view into a shared byte buffer. Buffers are
//! checked out of a [`FramePool`] as [`FrameMut`] builders, frozen into
//! views, and automatically returned to their pool when the last view
//! drops — so a steady-state send/receive loop performs no heap
//! allocation at all.
//!
//! The design is in the spirit of `bytes::Bytes`, reduced to what this
//! workspace needs and implemented without dependencies or `unsafe`:
//! uniqueness is checked through [`Arc::get_mut`], which is also what
//! makes the in-place wire assembly of [`FrameBuf::extend_in_place`]
//! sound — a buffer is only ever mutated while exactly one handle to it
//! exists.
//!
//! **Ownership rule:** a frame belongs to the pool it was acquired from,
//! for its whole life. Views may cross crates, threads and simulated
//! nodes freely; the bytes travel *by reference*, and the final drop —
//! wherever it happens — recycles the buffer into the origin pool. A
//! frame created from a plain `Vec<u8>` (via `From`) has no pool and
//! simply deallocates.
//!
//! One deliberate imprecision: when two views of one buffer race their
//! final drops on *different threads*, both may observe a strong count
//! above 1 and neither recycles — the buffer then simply deallocates
//! and the pool re-allocates on a later acquire. This is safe and
//! self-healing, and it cannot happen on the single-threaded simulation
//! data path (bindings, network, outbox draining), where the
//! steady-state zero-allocation guarantee is measured and asserted; an
//! exact last-dropper protocol would put a second atomic refcount on
//! every clone and drop to close a gap that only costs one stray
//! allocation when hit.

use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::Deref;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError, Weak};

/// Default cap on a pool's free list (see [`FramePool::set_max_free`]):
/// large enough that no steady-state workload in this workspace ever
/// hits it, small enough that a transient fan-out burst cannot pin an
/// unbounded peak working set forever.
pub const DEFAULT_MAX_FREE: usize = 1024;

/// Locks a pool mutex, recovering from poisoning: a worker thread that
/// panicked while holding the guard leaves the free list intact (it only
/// pushes/pops whole `Arc`s), so the data is still consistent — the pool
/// degrades to allocation only if the list itself were lost. Aborting
/// every later recycle/acquire over a dead thread's panic would turn one
/// failure into a cascade.
fn lock_free_list(free: &Mutex<Vec<Arc<Shared>>>) -> MutexGuard<'_, Vec<Arc<Shared>>> {
    free.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Counters describing a pool's allocation behaviour.
///
/// `created` only grows while the working set grows; once it plateaus,
/// every acquire is served from the free list (`reused`) and the data
/// path is allocation-free.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FramePoolStats {
    /// Buffers allocated because the free list was empty.
    pub created: u64,
    /// Acquires served by recycling a free buffer.
    pub reused: u64,
    /// Buffers returned to the free list by a final drop.
    pub recycled: u64,
    /// Buffers deallocated instead of recycled because the free list was
    /// at its [`FramePool::max_free`] cap.
    pub dropped: u64,
}

impl FramePoolStats {
    /// Buffers currently in flight: acquired (freshly created or reused)
    /// and neither returned to the free list nor dropped at the cap. This
    /// is the frame-path occupancy the telemetry layer gauges under
    /// `frame/occupancy`.
    #[must_use]
    pub fn occupancy(&self) -> u64 {
        (self.created + self.reused).saturating_sub(self.recycled + self.dropped)
    }
}

impl fmt::Display for FramePoolStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "created={} reused={} recycled={} dropped={} in_flight={}",
            self.created,
            self.reused,
            self.recycled,
            self.dropped,
            self.occupancy()
        )
    }
}

struct PoolInner {
    free: Mutex<Vec<Arc<Shared>>>,
    max_free: AtomicUsize,
    created: AtomicU64,
    reused: AtomicU64,
    recycled: AtomicU64,
    dropped: AtomicU64,
}

impl Default for PoolInner {
    fn default() -> Self {
        PoolInner {
            free: Mutex::new(Vec::new()),
            max_free: AtomicUsize::new(DEFAULT_MAX_FREE),
            created: AtomicU64::new(0),
            reused: AtomicU64::new(0),
            recycled: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
        }
    }
}

/// The shared backing store of one frame. Only ever mutated while a
/// single handle exists (enforced via `Arc::get_mut`).
struct Shared {
    buf: Vec<u8>,
    pool: Weak<PoolInner>,
}

impl Shared {
    fn detached(buf: Vec<u8>) -> Arc<Self> {
        Arc::new(Shared {
            buf,
            pool: Weak::new(),
        })
    }
}

/// Returns a uniquely held buffer to its origin pool (no-op for detached
/// buffers or when the pool is gone). Callers that hold a non-unique
/// `Arc` simply drop it; the *last* holder recycles. Final drops racing
/// on different threads may all observe a count above 1 and skip — the
/// buffer then deallocates instead of recycling (see the module docs
/// for why this imprecision is acceptable).
fn recycle(mut shared: Arc<Shared>) {
    // Fast path for shared buffers: a plain load instead of `get_mut`'s
    // compare-exchange. No `Weak<Shared>` is ever created, so observing
    // a strong count above 1 while holding a reference proves another
    // holder exists.
    if Arc::strong_count(&shared) != 1 {
        return;
    }
    let pool = match Arc::get_mut(&mut shared) {
        Some(s) => s.pool.upgrade(),
        None => return,
    };
    if let Some(pool) = pool {
        let mut free = lock_free_list(&pool.free);
        if free.len() >= pool.max_free.load(Ordering::Relaxed) {
            // Free list at capacity: deallocate instead of pinning a
            // burst's peak working set forever.
            drop(free);
            pool.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        free.push(shared);
        drop(free);
        pool.recycled.fetch_add(1, Ordering::Relaxed);
    }
}

/// A shared pool of recycled frame buffers.
///
/// Cheap to clone; clones share the pool. Thread-safe: frames may be
/// dropped (and thus recycled) from reactor worker threads.
///
/// # Examples
///
/// ```
/// use dear_sim::FramePool;
///
/// let pool = FramePool::new();
/// let mut frame = pool.acquire();
/// frame.extend_from_slice(b"hello");
/// let view = frame.freeze();
/// let copy = view.clone(); // no bytes copied
/// assert_eq!(&view[..], b"hello");
/// drop(view);
/// drop(copy); // last drop returns the buffer to the pool
/// assert_eq!(pool.stats().recycled, 1);
/// let again = pool.acquire(); // reuses the buffer, no allocation
/// assert_eq!(pool.stats().reused, 1);
/// drop(again);
/// ```
#[derive(Clone, Default)]
pub struct FramePool {
    inner: Arc<PoolInner>,
}

impl fmt::Debug for FramePool {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FramePool")
            .field("free", &self.free_count())
            .field("stats", &self.stats())
            .finish()
    }
}

impl FramePool {
    /// Creates an empty pool.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty pool whose free list is capped at `max_free`
    /// buffers (see [`FramePool::set_max_free`]).
    #[must_use]
    pub fn with_max_free(max_free: usize) -> Self {
        let pool = Self::default();
        pool.set_max_free(max_free);
        pool
    }

    /// Caps the free list: a final drop that would grow it beyond
    /// `max_free` deallocates the buffer instead (counted in
    /// [`FramePoolStats::dropped`]). Without a cap, one fan-out burst
    /// would permanently pin its peak working set — every buffer the
    /// burst forced into existence stays on the free list for the life
    /// of the pool. Defaults to [`DEFAULT_MAX_FREE`].
    pub fn set_max_free(&self, max_free: usize) {
        self.inner.max_free.store(max_free, Ordering::Relaxed);
    }

    /// The current free-list cap.
    #[must_use]
    pub fn max_free(&self) -> usize {
        self.inner.max_free.load(Ordering::Relaxed)
    }

    /// Checks a cleared buffer out of the pool (recycling a free one when
    /// available, allocating otherwise).
    #[must_use]
    pub fn acquire(&self) -> FrameMut {
        let recycled = lock_free_list(&self.inner.free).pop();
        let shared = match recycled {
            Some(mut shared) => {
                self.inner.reused.fetch_add(1, Ordering::Relaxed);
                Arc::get_mut(&mut shared)
                    .expect("free-list buffers are uniquely held")
                    .buf
                    .clear();
                shared
            }
            None => {
                self.inner.created.fetch_add(1, Ordering::Relaxed);
                Arc::new(Shared {
                    buf: Vec::new(),
                    pool: Arc::downgrade(&self.inner),
                })
            }
        };
        FrameMut {
            shared: Some(shared),
            headroom: 0,
        }
    }

    /// Number of buffers currently on the free list.
    #[must_use]
    pub fn free_count(&self) -> usize {
        lock_free_list(&self.inner.free).len()
    }

    /// Allocation counters.
    #[must_use]
    pub fn stats(&self) -> FramePoolStats {
        FramePoolStats {
            created: self.inner.created.load(Ordering::Relaxed),
            reused: self.inner.reused.load(Ordering::Relaxed),
            recycled: self.inner.recycled.load(Ordering::Relaxed),
            dropped: self.inner.dropped.load(Ordering::Relaxed),
        }
    }
}

/// A uniquely held, writable frame buffer (the builder stage of a frame's
/// life). Obtained from [`FramePool::acquire`] or [`FrameMut::detached`];
/// turned into an immutable shareable view with [`FrameMut::freeze`].
pub struct FrameMut {
    /// Always `Some` until `freeze`/`into_payload_vec` take it (kept as an
    /// `Option` so `Drop` can recycle un-frozen builders).
    shared: Option<Arc<Shared>>,
    headroom: usize,
}

impl fmt::Debug for FrameMut {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FrameMut")
            .field("len", &self.len())
            .field("headroom", &self.headroom)
            .finish()
    }
}

impl FrameMut {
    /// A writable buffer with no backing pool (deallocates instead of
    /// recycling). Used where no pool is in scope, e.g. test payloads.
    #[must_use]
    pub fn detached() -> Self {
        FrameMut {
            shared: Some(Shared::detached(Vec::new())),
            headroom: 0,
        }
    }

    fn buf(&mut self) -> &mut Vec<u8> {
        &mut Arc::get_mut(self.shared.as_mut().expect("builder not consumed"))
            .expect("FrameMut is uniquely held")
            .buf
    }

    fn buf_ref(&self) -> &Vec<u8> {
        &self.shared.as_ref().expect("builder not consumed").buf
    }

    /// Reserves `n` bytes of headroom in front of the content written so
    /// far — space a later wire-assembly step can claim for a header via
    /// [`FrameBuf::extend_in_place`] without copying the content.
    ///
    /// # Panics
    ///
    /// Panics if content was already written.
    pub fn reserve_headroom(&mut self, n: usize) {
        assert!(
            self.buf_ref().len() == self.headroom,
            "headroom must be reserved before writing content"
        );
        self.headroom += n;
        let headroom = self.headroom;
        self.buf().resize(headroom, 0);
    }

    /// Appends one byte.
    pub fn push(&mut self, byte: u8) {
        self.buf().push(byte);
    }

    /// Appends a byte slice.
    pub fn extend_from_slice(&mut self, bytes: &[u8]) {
        self.buf().extend_from_slice(bytes);
    }

    /// Content length in bytes (excluding headroom).
    #[must_use]
    pub fn len(&self) -> usize {
        self.buf_ref().len() - self.headroom
    }

    /// Whether no content was written yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The content written so far (excluding headroom).
    #[must_use]
    pub fn as_slice(&self) -> &[u8] {
        &self.buf_ref()[self.headroom..]
    }

    /// Mutable view of the content written so far (excluding headroom),
    /// for patching fields whose value is only known after later content
    /// was appended — e.g. a record count at the front of a batch frame.
    #[must_use]
    pub fn as_mut_slice(&mut self) -> &mut [u8] {
        let headroom = self.headroom;
        &mut self.buf()[headroom..]
    }

    /// Freezes the builder into an immutable, shareable view of the
    /// content (headroom stays in the buffer, in front of the view).
    #[must_use]
    pub fn freeze(mut self) -> FrameBuf {
        let shared = self.shared.take().expect("builder not consumed");
        let end = shared.buf.len();
        FrameBuf {
            shared: Some(shared),
            start: self.headroom,
            end,
        }
    }

    /// Consumes the builder, returning the content as a plain vector.
    ///
    /// This removes the buffer from pool circulation (compatibility path
    /// for callers that need an owned `Vec<u8>`).
    #[must_use]
    pub fn into_payload_vec(mut self) -> Vec<u8> {
        let shared = self.shared.take().expect("builder not consumed");
        let mut buf = match Arc::try_unwrap(shared) {
            Ok(s) => s.buf,
            Err(_) => unreachable!("FrameMut is uniquely held"),
        };
        if self.headroom > 0 {
            buf.drain(..self.headroom);
        }
        buf
    }
}

impl Drop for FrameMut {
    fn drop(&mut self) {
        if let Some(shared) = self.shared.take() {
            recycle(shared);
        }
    }
}

/// An immutable, reference-counted view into a (possibly pooled) byte
/// buffer. Cloning and slicing share the buffer; no bytes are copied.
/// Dropping the last view returns a pooled buffer to its pool.
///
/// Dereferences to `[u8]`, so it can be read anywhere a byte slice is
/// expected.
#[derive(Clone, Default)]
pub struct FrameBuf {
    /// `None` only for the empty default and after `Drop` took the
    /// buffer for recycling.
    shared: Option<Arc<Shared>>,
    start: usize,
    end: usize,
}

impl FrameBuf {
    /// An empty frame (no backing buffer).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The viewed bytes.
    #[must_use]
    pub fn as_slice(&self) -> &[u8] {
        match &self.shared {
            Some(shared) => &shared.buf[self.start..self.end],
            None => &[],
        }
    }

    /// Length of the view in bytes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the view is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// A sub-view of `self` (indices relative to this view). Shares the
    /// buffer; no bytes are copied.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    #[must_use]
    pub fn slice(&self, start: usize, end: usize) -> FrameBuf {
        assert!(start <= end && end <= self.len(), "slice out of bounds");
        FrameBuf {
            shared: self.shared.clone(),
            start: self.start + start,
            end: self.start + end,
        }
    }

    /// Copies the viewed bytes into an owned vector.
    #[must_use]
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }

    /// Zero-copy wire assembly: grows this view in place by writing
    /// `prefix` into the bytes immediately before it (headroom) and
    /// appending `suffix` after it.
    ///
    /// Succeeds only when the view is the *unique* holder of its buffer,
    /// has at least `prefix.len()` bytes of headroom, and ends at the
    /// buffer's tail — the state produced by a headroom-reserving
    /// [`FrameMut`]. Returns `Err(self)` unchanged otherwise, so the
    /// caller can fall back to a copying path.
    ///
    /// # Errors
    ///
    /// Returns `Err(self)` when in-place assembly is not possible (shared
    /// buffer, insufficient headroom, or trailing bytes after the view).
    pub fn extend_in_place(mut self, prefix: &[u8], suffix: &[u8]) -> Result<FrameBuf, FrameBuf> {
        let (start, end) = (self.start, self.end);
        let Some(arc) = self.shared.as_mut() else {
            return Err(self);
        };
        match Arc::get_mut(arc) {
            Some(shared) if start >= prefix.len() && end == shared.buf.len() => {
                let new_start = start - prefix.len();
                shared.buf[new_start..start].copy_from_slice(prefix);
                shared.buf.extend_from_slice(suffix);
                self.start = new_start;
                self.end = shared.buf.len();
                Ok(self)
            }
            _ => Err(self),
        }
    }
}

impl Drop for FrameBuf {
    fn drop(&mut self) {
        if let Some(shared) = self.shared.take() {
            recycle(shared);
        }
    }
}

impl Deref for FrameBuf {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for FrameBuf {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for FrameBuf {
    /// Wraps an owned vector as a detached (pool-less) frame.
    fn from(buf: Vec<u8>) -> Self {
        let end = buf.len();
        FrameBuf {
            shared: Some(Shared::detached(buf)),
            start: 0,
            end,
        }
    }
}

impl From<&[u8]> for FrameBuf {
    fn from(bytes: &[u8]) -> Self {
        FrameBuf::from(bytes.to_vec())
    }
}

impl<const N: usize> From<[u8; N]> for FrameBuf {
    fn from(bytes: [u8; N]) -> Self {
        FrameBuf::from(bytes.to_vec())
    }
}

impl fmt::Debug for FrameBuf {
    /// Debug-formats like a `Vec<u8>` would, so log and trace output is
    /// unchanged from the pre-frame era.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self.as_slice(), f)
    }
}

impl PartialEq for FrameBuf {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for FrameBuf {}

impl PartialEq<[u8]> for FrameBuf {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<&[u8]> for FrameBuf {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_slice() == *other
    }
}

impl PartialEq<Vec<u8>> for FrameBuf {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl PartialEq<FrameBuf> for Vec<u8> {
    fn eq(&self, other: &FrameBuf) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl<const N: usize> PartialEq<[u8; N]> for FrameBuf {
    fn eq(&self, other: &[u8; N]) -> bool {
        self.as_slice() == other
    }
}

impl Hash for FrameBuf {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_freeze_and_read() {
        let pool = FramePool::new();
        let mut m = pool.acquire();
        m.push(1);
        m.extend_from_slice(&[2, 3]);
        assert_eq!(m.len(), 3);
        assert_eq!(m.as_slice(), &[1, 2, 3]);
        let f = m.freeze();
        assert_eq!(f, vec![1, 2, 3]);
        assert_eq!(f.len(), 3);
        assert_eq!(&f[1..], &[2, 3]);
    }

    #[test]
    fn clones_and_slices_share_without_copying() {
        let f = FrameBuf::from(vec![10, 20, 30, 40]);
        let c = f.clone();
        let s = f.slice(1, 3);
        assert_eq!(s, vec![20, 30]);
        assert_eq!(s.slice(1, 2), vec![30]);
        // Same backing store: identical addresses.
        assert!(std::ptr::eq(&f.as_slice()[1], &c.as_slice()[1]));
        assert!(std::ptr::eq(&f.as_slice()[1], &s.as_slice()[0]));
    }

    #[test]
    fn last_drop_recycles_and_acquire_reuses() {
        let pool = FramePool::new();
        let a = pool.acquire().freeze();
        let b = a.clone();
        drop(a);
        assert_eq!(pool.stats().recycled, 0, "a view is still alive");
        drop(b);
        assert_eq!(pool.stats().recycled, 1);
        assert_eq!(pool.free_count(), 1);
        let _c = pool.acquire();
        let stats = pool.stats();
        assert_eq!((stats.created, stats.reused), (1, 1));
        assert_eq!(pool.free_count(), 0);
    }

    #[test]
    fn unfrozen_builders_recycle_too() {
        let pool = FramePool::new();
        let mut m = pool.acquire();
        m.extend_from_slice(&[9; 100]);
        drop(m);
        assert_eq!(pool.stats().recycled, 1);
        // The recycled buffer comes back cleared but with its capacity.
        let m = pool.acquire();
        assert!(m.is_empty());
        assert_eq!(pool.stats().reused, 1);
    }

    #[test]
    fn detached_frames_have_no_pool() {
        let f = FrameBuf::from(vec![1]);
        drop(f);
        let m = FrameMut::detached();
        assert_eq!(m.into_payload_vec(), Vec::<u8>::new());
    }

    #[test]
    fn headroom_reserved_then_claimed_in_place() {
        let pool = FramePool::new();
        let mut m = pool.acquire();
        m.reserve_headroom(4);
        m.extend_from_slice(b"body");
        assert_eq!(m.as_slice(), b"body", "headroom invisible to content");
        let payload = m.freeze();
        let frame = payload
            .extend_in_place(b"HEAD", b"!!")
            .expect("unique view with headroom");
        assert_eq!(frame, b"HEADbody!!".to_vec());
    }

    #[test]
    fn extend_in_place_refuses_shared_or_cramped_views() {
        // Shared: a second view exists.
        let pool = FramePool::new();
        let mut m = pool.acquire();
        m.reserve_headroom(4);
        m.extend_from_slice(b"x");
        let payload = m.freeze();
        let other = payload.clone();
        let payload = payload.extend_in_place(b"HEAD", b"").unwrap_err();
        drop(other);
        // No headroom.
        let cramped = FrameBuf::from(vec![1, 2]);
        assert!(cramped.extend_in_place(b"H", b"").is_err());
        // Not at the buffer tail (the sub-view keeps `payload` shared, so
        // `payload` itself also still refuses).
        let head = payload.slice(0, 0);
        assert!(head.extend_in_place(b"", b"t").is_err());
        // Unique again, at the tail: succeeds now.
        assert!(payload.extend_in_place(b"HEAD", b"").is_ok());
    }

    #[test]
    fn into_payload_vec_strips_headroom() {
        let pool = FramePool::new();
        let mut m = pool.acquire();
        m.reserve_headroom(2);
        m.extend_from_slice(&[7, 8]);
        assert_eq!(m.into_payload_vec(), vec![7, 8]);
    }

    #[test]
    fn equality_debug_and_hash_follow_contents() {
        let a = FrameBuf::from(vec![1, 2]);
        let b = FrameBuf::from(vec![0, 1, 2, 3]).slice(1, 3);
        assert_eq!(a, b);
        assert_eq!(a, vec![1, 2]);
        assert_eq!(vec![1, 2], a);
        assert_eq!(a, [1u8, 2]);
        assert_eq!(a, &[1u8, 2][..]);
        assert_eq!(format!("{a:?}"), format!("{:?}", vec![1u8, 2]));
        let hash = |f: &FrameBuf| {
            let mut h = std::collections::hash_map::DefaultHasher::new();
            f.hash(&mut h);
            h.finish()
        };
        assert_eq!(hash(&a), hash(&b));
    }

    #[test]
    fn frames_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<FrameBuf>();
        assert_send_sync::<FrameMut>();
        assert_send_sync::<FramePool>();
    }

    #[test]
    fn dropping_the_pool_detaches_outstanding_frames() {
        let pool = FramePool::new();
        let f = pool.acquire().freeze();
        drop(pool);
        drop(f); // must not panic; buffer simply deallocates
    }

    #[test]
    fn free_list_is_capped_and_overflow_is_counted() {
        let pool = FramePool::with_max_free(2);
        assert_eq!(pool.max_free(), 2);
        // A fan-out burst: four buffers in flight at once.
        let burst: Vec<FrameBuf> = (0..4).map(|_| pool.acquire().freeze()).collect();
        drop(burst);
        // Only `max_free` survive on the free list; the rest deallocate.
        assert_eq!(pool.free_count(), 2);
        let stats = pool.stats();
        assert_eq!(
            (stats.created, stats.recycled, stats.dropped),
            (4, 2, 2),
            "burst of 4 against a cap of 2: 2 recycled, 2 dropped"
        );
        assert_eq!(stats.occupancy(), 0, "nothing in flight after the burst");
        // Steady state below the cap still recycles.
        drop(pool.acquire());
        let stats = pool.stats();
        assert_eq!((stats.reused, stats.dropped), (1, 2));
    }

    #[test]
    fn lowering_the_cap_applies_to_later_recycles() {
        let pool = FramePool::with_max_free(8);
        let frames: Vec<FrameBuf> = (0..3).map(|_| pool.acquire().freeze()).collect();
        pool.set_max_free(0);
        drop(frames);
        assert_eq!(pool.free_count(), 0);
        assert_eq!(pool.stats().dropped, 3);
    }

    #[test]
    fn poisoned_free_list_degrades_to_allocation_instead_of_panicking() {
        let pool = FramePool::new();
        drop(pool.acquire()); // one buffer on the free list
        assert_eq!(pool.free_count(), 1);
        // A worker panics while holding the free-list lock.
        let inner = Arc::clone(&pool.inner);
        std::thread::spawn(move || {
            let _guard = inner.free.lock().expect("not yet poisoned");
            panic!("worker dies while holding the pool lock");
        })
        .join()
        .expect_err("the worker thread panicked");
        assert!(pool.inner.free.lock().is_err(), "mutex is poisoned");
        // Every pool operation still works: the list data is intact.
        assert_eq!(pool.free_count(), 1);
        let frame = pool.acquire();
        assert_eq!(pool.stats().reused, 1, "recovered guard still recycles");
        drop(frame);
        assert_eq!(pool.stats().recycled, 2);
        assert_eq!(pool.free_count(), 1);
    }
}
