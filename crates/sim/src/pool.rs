//! Simulated worker-thread pools.
//!
//! AUTOSAR AP's communication management maps each incoming method
//! invocation to a worker thread by default, so "the order in which the
//! calls are handled is determined purely by the thread scheduler" (paper
//! §I, Figure 1). [`TaskPool`] models exactly that: each submitted task
//! receives a random *dispatch delay* (the scheduler deciding when the
//! worker actually starts) and then occupies one of a finite set of
//! workers for its execution duration.
//!
//! With more than one worker, tasks submitted back-to-back can start — and
//! therefore acquire the server's state lock — in any order, which is the
//! mechanism behind the paper's Figure 1 value distribution.

use crate::rng::{LatencyModel, SimRng};
use crate::sim::Simulation;
use dear_time::{Duration, Instant};
use std::cell::RefCell;
use std::fmt;
use std::rc::Rc;

/// Statistics for a task pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PoolStats {
    /// Tasks submitted in total.
    pub submitted: u64,
    /// Tasks that had to wait for a busy worker.
    pub queued: u64,
}

impl fmt::Display for PoolStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "submitted={} queued={}", self.submitted, self.queued)
    }
}

struct PoolInner {
    /// Per-worker time at which the worker becomes free.
    workers: Vec<Instant>,
    dispatch_jitter: LatencyModel,
    rng: SimRng,
    stats: PoolStats,
}

/// A simulated pool of worker threads with stochastic dispatch latency.
///
/// # Examples
///
/// ```
/// use dear_sim::{LatencyModel, Simulation, TaskPool};
/// use dear_time::Duration;
/// use std::cell::RefCell;
/// use std::rc::Rc;
///
/// let mut sim = Simulation::new(7);
/// let pool = TaskPool::new(
///     4,
///     LatencyModel::uniform(Duration::ZERO, Duration::from_micros(200)),
///     sim.fork_rng("pool"),
/// );
///
/// let order = Rc::new(RefCell::new(Vec::new()));
/// for i in 0..3 {
///     let order = order.clone();
///     pool.submit(&mut sim, Duration::from_micros(10), move |_sim| {
///         order.borrow_mut().push(i);
///     });
/// }
/// sim.run_to_completion();
/// // All three ran, but their start order depended on the sampled jitter.
/// assert_eq!(order.borrow().len(), 3);
/// ```
#[derive(Clone)]
pub struct TaskPool(Rc<RefCell<PoolInner>>);

impl fmt::Debug for TaskPool {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let inner = self.0.borrow();
        f.debug_struct("TaskPool")
            .field("workers", &inner.workers.len())
            .field("stats", &inner.stats)
            .finish()
    }
}

impl TaskPool {
    /// Creates a pool with `workers` worker threads and the given dispatch
    /// jitter model.
    ///
    /// # Panics
    ///
    /// Panics if `workers == 0`.
    #[must_use]
    pub fn new(workers: usize, dispatch_jitter: LatencyModel, rng: SimRng) -> Self {
        assert!(workers > 0, "pool needs at least one worker");
        TaskPool(Rc::new(RefCell::new(PoolInner {
            workers: vec![Instant::EPOCH; workers],
            dispatch_jitter,
            rng,
            stats: PoolStats::default(),
        })))
    }

    /// A single-worker pool with no dispatch jitter: tasks execute strictly
    /// in submission order. This models AP's "single thread" configuration
    /// that the paper mentions as the (performance-limiting) workaround.
    #[must_use]
    pub fn single_threaded(rng: SimRng) -> Self {
        TaskPool::new(1, LatencyModel::constant(Duration::ZERO), rng)
    }

    /// Submits a task that occupies a worker for `duration` and runs `body`
    /// when it starts.
    ///
    /// The start time is `now + jitter`, postponed further if all workers
    /// are busy. Returns the scheduled start time.
    pub fn submit(
        &self,
        sim: &mut Simulation,
        duration: Duration,
        body: impl FnOnce(&mut Simulation) + 'static,
    ) -> Instant {
        let start = {
            let mut inner = self.0.borrow_mut();
            inner.stats.submitted += 1;
            let jitter = inner.dispatch_jitter.clone().sample(&mut inner.rng);
            let arrival = sim.now() + jitter;
            // Earliest-free worker; ties broken by index for determinism.
            let (idx, &free_at) = inner
                .workers
                .iter()
                .enumerate()
                .min_by_key(|(i, &t)| (t, *i))
                .expect("pool has workers");
            let start = arrival.max(free_at);
            if free_at > arrival {
                inner.stats.queued += 1;
            }
            inner.workers[idx] = start + duration;
            start
        };
        sim.schedule_at(start, body);
        start
    }

    /// Submits a task and additionally runs `on_complete` when the task's
    /// execution duration has elapsed.
    pub fn submit_with_completion(
        &self,
        sim: &mut Simulation,
        duration: Duration,
        body: impl FnOnce(&mut Simulation) + 'static,
        on_complete: impl FnOnce(&mut Simulation) + 'static,
    ) -> Instant {
        let start = self.submit(sim, duration, body);
        sim.schedule_at(start + duration, on_complete);
        start
    }

    /// Current statistics.
    #[must_use]
    pub fn stats(&self) -> PoolStats {
        self.0.borrow().stats
    }

    /// Number of workers.
    #[must_use]
    pub fn worker_count(&self) -> usize {
        self.0.borrow().workers.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;
    use std::rc::Rc;

    #[test]
    fn single_threaded_pool_preserves_submission_order() {
        let mut sim = Simulation::new(1);
        let pool = TaskPool::single_threaded(sim.fork_rng("pool"));
        let order = Rc::new(RefCell::new(Vec::new()));
        for i in 0..20 {
            let order = order.clone();
            pool.submit(&mut sim, Duration::from_micros(5), move |_| {
                order.borrow_mut().push(i);
            });
        }
        sim.run_to_completion();
        assert_eq!(*order.borrow(), (0..20).collect::<Vec<i32>>());
    }

    #[test]
    fn multi_worker_pool_with_jitter_permutes_start_order() {
        // Run many trials; at least one must deviate from submission order.
        let mut permuted = false;
        for seed in 0..20 {
            let mut sim = Simulation::new(seed);
            let pool = TaskPool::new(
                4,
                LatencyModel::uniform(Duration::ZERO, Duration::from_millis(1)),
                sim.fork_rng("pool"),
            );
            let order = Rc::new(RefCell::new(Vec::new()));
            for i in 0..5 {
                let order = order.clone();
                pool.submit(&mut sim, Duration::from_micros(10), move |_| {
                    order.borrow_mut().push(i);
                });
            }
            sim.run_to_completion();
            if *order.borrow() != (0..5).collect::<Vec<i32>>() {
                permuted = true;
                break;
            }
        }
        assert!(permuted, "expected at least one permuted start order");
    }

    #[test]
    fn busy_workers_delay_tasks() {
        let mut sim = Simulation::new(0);
        let pool = TaskPool::new(
            1,
            LatencyModel::constant(Duration::ZERO),
            sim.fork_rng("pool"),
        );
        let starts = Rc::new(RefCell::new(Vec::new()));
        for _ in 0..3 {
            let starts = starts.clone();
            pool.submit(&mut sim, Duration::from_millis(10), move |sim| {
                starts.borrow_mut().push(sim.now());
            });
        }
        sim.run_to_completion();
        assert_eq!(
            *starts.borrow(),
            vec![
                Instant::EPOCH,
                Instant::from_millis(10),
                Instant::from_millis(20)
            ]
        );
        assert_eq!(pool.stats().queued, 2);
    }

    #[test]
    fn two_workers_run_two_tasks_concurrently() {
        let mut sim = Simulation::new(0);
        let pool = TaskPool::new(
            2,
            LatencyModel::constant(Duration::ZERO),
            sim.fork_rng("pool"),
        );
        let starts = Rc::new(RefCell::new(Vec::new()));
        for _ in 0..3 {
            let starts = starts.clone();
            pool.submit(&mut sim, Duration::from_millis(10), move |sim| {
                starts.borrow_mut().push(sim.now());
            });
        }
        sim.run_to_completion();
        assert_eq!(
            *starts.borrow(),
            vec![Instant::EPOCH, Instant::EPOCH, Instant::from_millis(10)]
        );
    }

    #[test]
    fn completion_fires_after_duration() {
        let mut sim = Simulation::new(0);
        let pool = TaskPool::single_threaded(sim.fork_rng("pool"));
        let done_at = Rc::new(RefCell::new(None));
        let sink = done_at.clone();
        pool.submit_with_completion(
            &mut sim,
            Duration::from_millis(7),
            |_| {},
            move |sim| *sink.borrow_mut() = Some(sim.now()),
        );
        sim.run_to_completion();
        assert_eq!(*done_at.borrow(), Some(Instant::from_millis(7)));
    }

    #[test]
    fn stats_count_submissions() {
        let mut sim = Simulation::new(0);
        let pool = TaskPool::single_threaded(sim.fork_rng("pool"));
        for _ in 0..5 {
            pool.submit(&mut sim, Duration::ZERO, |_| {});
        }
        assert_eq!(pool.stats().submitted, 5);
        assert_eq!(pool.worker_count(), 1);
    }
}
