//! Trace recording for determinism checks and figure harnesses.
//!
//! A [`Trace`] is an append-only log of `(time, category, detail)` records.
//! Two runs of a *deterministic* system must produce byte-identical traces;
//! the integration tests compare [`Trace::fingerprint`] values across seeds
//! and executor back-ends to verify exactly that (the central claim of the
//! paper's §III).
//!
//! Details come in two shapes: free-form [`TraceDetail::Text`] lines (the
//! original model, still used by cold paths) and typed
//! [`TraceDetail::Typed`] records carrying a [`EventKind`] — interned
//! names plus logical tags, recorded by the hot paths without any
//! formatting. Both shapes render to the same canonical line, and the
//! fingerprint hashes that rendering, so the string→typed migration moved
//! **no** fingerprint.

use dear_observe::EventKind;
use dear_time::Instant;
use std::borrow::Cow;
use std::fmt;

/// The payload of a [`TraceEvent`]: a free-form line or a typed record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceDetail {
    /// A pre-formatted detail line.
    Text(String),
    /// A structured record; its canonical rendering is the detail line.
    Typed(EventKind),
}

impl TraceDetail {
    /// Appends the canonical detail line to `out`.
    pub fn render(&self, out: &mut String) {
        match self {
            TraceDetail::Text(s) => out.push_str(s),
            TraceDetail::Typed(kind) => kind.render(out),
        }
    }
}

impl fmt::Display for TraceDetail {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceDetail::Text(s) => f.write_str(s),
            TraceDetail::Typed(kind) => write!(f, "{kind}"),
        }
    }
}

impl PartialEq<str> for TraceDetail {
    fn eq(&self, other: &str) -> bool {
        match self {
            TraceDetail::Text(s) => s == other,
            TraceDetail::Typed(kind) => {
                let mut rendered = String::new();
                kind.render(&mut rendered);
                rendered == other
            }
        }
    }
}

/// One record in a [`Trace`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Time at which the event was recorded (epoch depends on the recorder).
    pub at: Instant,
    /// Coarse category, e.g. `"net"`, `"reaction"`, `"error"`.
    pub category: Cow<'static, str>,
    /// Detail payload (free-form or typed).
    pub detail: TraceDetail,
}

impl TraceEvent {
    /// The canonical detail line as an owned string.
    #[must_use]
    pub fn detail_text(&self) -> String {
        let mut s = String::new();
        self.detail.render(&mut s);
        s
    }

    /// The typed record, if this event carries one.
    #[must_use]
    pub fn kind(&self) -> Option<&EventKind> {
        match &self.detail {
            TraceDetail::Typed(kind) => Some(kind),
            TraceDetail::Text(_) => None,
        }
    }
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}: {}", self.at, self.category, self.detail)
    }
}

/// An append-only event log with a deterministic fingerprint.
///
/// # Examples
///
/// ```
/// use dear_sim::Trace;
/// use dear_time::Instant;
///
/// let mut t = Trace::new();
/// t.record(Instant::from_millis(1), "net", "frame 0 delivered");
/// assert_eq!(t.len(), 1);
/// let fp = t.fingerprint();
/// let mut t2 = Trace::new();
/// t2.record(Instant::from_millis(1), "net", "frame 0 delivered");
/// assert_eq!(fp, t2.fingerprint());
/// ```
#[derive(Debug, Clone, Default)]
pub struct Trace {
    events: Vec<TraceEvent>,
    enabled: bool,
}

impl Trace {
    /// Creates an empty, enabled trace.
    #[must_use]
    pub fn new() -> Self {
        Trace {
            events: Vec::new(),
            enabled: true,
        }
    }

    /// Creates a disabled trace that drops all records (zero overhead mode).
    #[must_use]
    pub fn disabled() -> Self {
        Trace {
            events: Vec::new(),
            enabled: false,
        }
    }

    /// Enables or disables recording.
    pub fn set_enabled(&mut self, enabled: bool) {
        self.enabled = enabled;
    }

    /// Returns whether recording is enabled.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Appends a record if recording is enabled.
    ///
    /// The `detail` argument is evaluated by the *caller*, so building it
    /// with `format!` pays the formatting cost even when the trace is
    /// disabled. Hot paths must use [`Trace::record_with`] instead, which
    /// defers detail construction behind the enabled check.
    pub fn record(
        &mut self,
        at: Instant,
        category: impl Into<Cow<'static, str>>,
        detail: impl Into<String>,
    ) {
        if self.enabled {
            self.events.push(TraceEvent {
                at,
                category: category.into(),
                detail: TraceDetail::Text(detail.into()),
            });
        }
    }

    /// Appends a record if recording is enabled, building the detail line
    /// lazily.
    ///
    /// When the trace is disabled this performs **zero formatting and zero
    /// heap allocation**: the closure is never called and a `&'static str`
    /// category is borrowed, not copied. This is the API the runtime hot
    /// path uses for per-reaction records.
    ///
    /// # Examples
    ///
    /// ```
    /// use dear_sim::Trace;
    /// use dear_time::Instant;
    ///
    /// let mut off = Trace::disabled();
    /// off.record_with(Instant::EPOCH, "reaction", || unreachable!("never built"));
    /// assert!(off.is_empty());
    ///
    /// let mut on = Trace::new();
    /// on.record_with(Instant::EPOCH, "reaction", || format!("r{} fired", 3));
    /// assert_eq!(on.len(), 1);
    /// ```
    pub fn record_with(
        &mut self,
        at: Instant,
        category: impl Into<Cow<'static, str>>,
        detail: impl FnOnce() -> String,
    ) {
        if self.enabled {
            self.events.push(TraceEvent {
                at,
                category: category.into(),
                detail: TraceDetail::Text(detail()),
            });
        }
    }

    /// Appends a typed record if recording is enabled, building the
    /// [`EventKind`] lazily.
    ///
    /// This is the structured twin of [`Trace::record_with`]: the hot
    /// paths hand over interned `Arc<str>` names and logical tags instead
    /// of formatting a `String` per event. Disabled-mode cost is one
    /// branch; enabled-mode cost is an `Arc` clone and a `Vec` push — the
    /// detail line is only materialized by fingerprinting or display.
    pub fn record_event(
        &mut self,
        at: Instant,
        category: impl Into<Cow<'static, str>>,
        kind: impl FnOnce() -> EventKind,
    ) {
        if self.enabled {
            self.events.push(TraceEvent {
                at,
                category: category.into(),
                detail: TraceDetail::Typed(kind()),
            });
        }
    }

    /// Number of recorded events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Returns `true` if no events were recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Iterates over the recorded events in order.
    pub fn iter(&self) -> std::slice::Iter<'_, TraceEvent> {
        self.events.iter()
    }

    /// Iterates over the events recorded under a given category, without
    /// allocating.
    ///
    /// # Examples
    ///
    /// ```
    /// use dear_sim::Trace;
    /// use dear_time::Instant;
    ///
    /// let mut t = Trace::new();
    /// t.record(Instant::EPOCH, "net", "sent");
    /// t.record(Instant::EPOCH, "rti", "grant");
    /// assert_eq!(t.events_in("rti").count(), 1);
    /// ```
    pub fn events_in<'t, 'c>(
        &'t self,
        category: &'c str,
    ) -> impl Iterator<Item = &'t TraceEvent> + use<'t, 'c> {
        self.events.iter().filter(move |e| e.category == category)
    }

    /// Returns the events recorded under a given category, collected.
    ///
    /// Thin wrapper over [`Trace::events_in`] for callers that want a
    /// `Vec`; prefer the iterator on hot paths.
    #[must_use]
    pub fn in_category(&self, category: &str) -> Vec<&TraceEvent> {
        self.events_in(category).collect()
    }

    /// Removes all recorded events (the enabled flag is preserved).
    pub fn clear(&mut self) {
        self.events.clear();
    }

    /// A deterministic 64-bit FNV-1a fingerprint over all records.
    ///
    /// Two traces have equal fingerprints iff (with overwhelming
    /// probability) they contain the same records in the same order —
    /// the workhorse of the determinism assertions in this workspace.
    ///
    /// Typed details are hashed via their canonical rendering (into one
    /// reused scratch buffer), so a typed record and the free-form line
    /// it replaced produce identical fingerprints.
    #[must_use]
    pub fn fingerprint(&self) -> u64 {
        let mut hash = 0xCBF2_9CE4_8422_2325u64;
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                hash ^= u64::from(b);
                hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
            }
        };
        let mut scratch = String::new();
        for e in &self.events {
            eat(&e.at.as_nanos().to_le_bytes());
            eat(e.category.as_bytes());
            eat(&[0xFF]);
            match &e.detail {
                TraceDetail::Text(s) => eat(s.as_bytes()),
                typed => {
                    scratch.clear();
                    typed.render(&mut scratch);
                    eat(scratch.as_bytes());
                }
            }
            eat(&[0xFE]);
        }
        hash
    }
}

impl<'a> IntoIterator for &'a Trace {
    type Item = &'a TraceEvent;
    type IntoIter = std::slice::Iter<'a, TraceEvent>;
    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_in_order() {
        let mut t = Trace::new();
        t.record(Instant::from_millis(1), "a", "one");
        t.record(Instant::from_millis(2), "b", "two");
        let cats: Vec<_> = t.iter().map(|e| e.category.as_ref()).collect();
        assert_eq!(cats, vec!["a", "b"]);
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn disabled_trace_drops_records() {
        let mut t = Trace::disabled();
        t.record(Instant::EPOCH, "a", "x");
        assert!(t.is_empty());
        t.set_enabled(true);
        t.record(Instant::EPOCH, "a", "x");
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn fingerprint_sensitive_to_order_and_content() {
        let mut a = Trace::new();
        a.record(Instant::from_millis(1), "x", "one");
        a.record(Instant::from_millis(2), "x", "two");
        let mut b = Trace::new();
        b.record(Instant::from_millis(2), "x", "two");
        b.record(Instant::from_millis(1), "x", "one");
        assert_ne!(a.fingerprint(), b.fingerprint());

        let mut c = Trace::new();
        c.record(Instant::from_millis(1), "x", "one");
        c.record(Instant::from_millis(2), "x", "twO");
        assert_ne!(a.fingerprint(), c.fingerprint());
    }

    #[test]
    fn category_filter() {
        let mut t = Trace::new();
        t.record(Instant::EPOCH, "err", "bad");
        t.record(Instant::EPOCH, "ok", "good");
        t.record(Instant::EPOCH, "err", "worse");
        assert_eq!(t.in_category("err").len(), 2);
        assert_eq!(t.in_category("ok").len(), 1);
        assert_eq!(t.in_category("none").len(), 0);
        // The iterator form sees the same events without collecting.
        assert_eq!(t.events_in("err").count(), 2);
        assert!(t.events_in("err").all(|e| e.category == "err"));
    }

    #[test]
    fn display_format() {
        let e = TraceEvent {
            at: Instant::from_secs(1),
            category: "net".into(),
            detail: TraceDetail::Text("hello".into()),
        };
        assert_eq!(e.to_string(), "[1.000000000s] net: hello");
        assert_eq!(e.detail_text(), "hello");
        assert!(e.kind().is_none());
    }

    #[test]
    fn typed_record_fingerprints_like_its_rendering() {
        use dear_observe::{EventKind, LogicalTag};
        use std::sync::Arc;

        let tag = LogicalTag {
            time: Instant::from_millis(10),
            microstep: 1,
        };
        let name: Arc<str> = Arc::from("ctrl/apply");

        // The legacy string path...
        let mut legacy = Trace::new();
        legacy.record(tag.time, "reaction", format!("{name} at {tag}"));
        legacy.record(
            tag.time,
            "stp-violation",
            format!("action {name} requested {tag} but current is {tag}"),
        );

        // ...and the typed path must be fingerprint-identical.
        let mut typed = Trace::new();
        typed.record_event(tag.time, "reaction", || EventKind::Reaction {
            name: name.clone(),
            tag,
        });
        typed.record_event(tag.time, "stp-violation", || EventKind::StpViolation {
            name: name.clone(),
            requested: tag,
            current: tag,
        });

        assert_eq!(legacy.fingerprint(), typed.fingerprint());
        assert_eq!(
            typed.iter().next().unwrap().detail_text(),
            format!("{name} at {tag}")
        );
        assert_eq!(
            typed.iter().next().unwrap().kind().unwrap().name(),
            "ctrl/apply"
        );
    }

    #[test]
    fn record_event_skips_construction_when_disabled() {
        let mut t = Trace::disabled();
        t.record_event(Instant::EPOCH, "reaction", || {
            unreachable!("kind built despite disabled trace")
        });
        assert!(t.is_empty());
    }
}
