//! Simulated network: nodes, links, latency, loss, and (re)ordering.
//!
//! The paper's evaluation platform is two boards connected through an
//! Ethernet switch; message transport time is one of the three identified
//! nondeterminism sources ("the time required for message transport is
//! still unpredictable", §II.B). [`Network`] models point-to-point links
//! with a configurable [`LatencyModel`], optional FIFO enforcement
//! (in-order delivery, which AP does *not* formally require), and optional
//! frame loss.
//!
//! Frames are raw byte payloads addressed by [`NodeId`]; the SOME/IP crate
//! layers its wire format on top.

use crate::frame::FrameBuf;
use crate::rng::{LatencyModel, SimRng};
use crate::sim::Simulation;
use dear_time::{Duration, Instant};
use std::cell::RefCell;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::rc::Rc;

/// Identifies a node (platform/ECU) on the simulated network.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u16);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "node{}", self.0)
    }
}

/// A raw frame in flight on the network.
///
/// The payload is a [`FrameBuf`] view: queuing, fan-out and delivery
/// never copy the bytes, and the backing buffer returns to its pool once
/// the receiver is done with it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// Sending node.
    pub src: NodeId,
    /// Destination node.
    pub dst: NodeId,
    /// Opaque payload (the SOME/IP layer serializes into this).
    pub payload: FrameBuf,
}

/// Configuration of a directed link between two nodes.
#[derive(Debug, Clone, PartialEq)]
pub struct LinkConfig {
    /// Per-frame transport latency distribution.
    pub latency: LatencyModel,
    /// If `true`, frames on this link never overtake each other.
    ///
    /// AP does not formally require in-order delivery (nondeterminism
    /// source 3); set to `false` to model reordering transports.
    pub fifo: bool,
    /// Probability that a frame is silently dropped.
    pub drop_probability: f64,
}

impl LinkConfig {
    /// An ideal link: constant latency, FIFO, no loss.
    #[must_use]
    pub fn ideal(latency: Duration) -> Self {
        LinkConfig {
            latency: LatencyModel::constant(latency),
            fifo: true,
            drop_probability: 0.0,
        }
    }

    /// A link with the given latency model, FIFO, no loss.
    #[must_use]
    pub fn with_latency(latency: LatencyModel) -> Self {
        LinkConfig {
            latency,
            fifo: true,
            drop_probability: 0.0,
        }
    }

    /// Disables FIFO ordering on this link (frames may overtake).
    #[must_use]
    pub fn reordering(mut self) -> Self {
        self.fifo = false;
        self
    }

    /// Sets the drop probability.
    #[must_use]
    pub fn with_drop_probability(mut self, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        self.drop_probability = p;
        self
    }
}

impl Default for LinkConfig {
    /// Default: 100 µs constant latency, FIFO, lossless (a quiet switched
    /// LAN segment).
    fn default() -> Self {
        LinkConfig::ideal(Duration::from_micros(100))
    }
}

/// Delivery statistics for a network.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct NetStats {
    /// Frames submitted for transmission.
    pub sent: u64,
    /// Frames delivered to a registered receiver.
    pub delivered: u64,
    /// Frames dropped by loss models (including fault-injected loss
    /// bursts).
    pub dropped: u64,
    /// Frames addressed to a node with no registered receiver.
    pub unroutable: u64,
    /// Frames dropped because their link was down (killed or partitioned
    /// by a fault plan).
    pub faulted: u64,
}

impl fmt::Display for NetStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "sent={} delivered={} dropped={} unroutable={} faulted={}",
            self.sent, self.delivered, self.dropped, self.unroutable, self.faulted
        )
    }
}

type Receiver = Rc<dyn Fn(&mut Simulation, Frame)>;
type NodeObserver = Rc<dyn Fn(&mut Simulation, NodeId, bool)>;

struct LinkState {
    config: LinkConfig,
    /// Earliest time the next FIFO delivery may occur.
    next_free: Instant,
    /// Whether the link currently carries frames at all. Killed links
    /// drop everything (counted in [`NetStats::faulted`]) until healed.
    up: bool,
    /// Fault-injected loss override; when set it replaces the configured
    /// drop probability without touching the base configuration.
    drop_override: Option<f64>,
    /// Fault-injected latency override (e.g. a congestion spike). The
    /// configured model — and therefore [`NetworkHandle::latency_bound`],
    /// the *assumed* bound `L` — is untouched, which is exactly how a
    /// spike beyond the engineered bound surfaces as observable STP
    /// violations upstream.
    latency_override: Option<LatencyModel>,
}

impl LinkState {
    fn new(config: LinkConfig) -> Self {
        LinkState {
            config,
            next_free: Instant::EPOCH,
            up: true,
            drop_override: None,
            latency_override: None,
        }
    }
}

/// The simulated network fabric.
///
/// Usually accessed through the cheap-to-clone [`NetworkHandle`], which can
/// be captured by simulation event closures.
pub struct Network {
    default_link: LinkConfig,
    // BTreeMap rather than HashMap so that no observable behaviour (and no
    // future iteration over links or receivers) can ever depend on hasher
    // state — the same hardening applied to `dear-someip` and the
    // transactor platform tables.
    links: BTreeMap<(NodeId, NodeId), LinkState>,
    receivers: BTreeMap<NodeId, Receiver>,
    /// Nodes whose whole ECU is down (see [`NetworkHandle::set_node_up`]):
    /// frames *from* them are swallowed like a downed link's. Frames *to*
    /// them still deliver — a crashed federate's durable log keeps
    /// accepting inputs while the runtime is dead, which is what makes
    /// crash recovery replay byte-identical.
    downed_nodes: BTreeSet<NodeId>,
    /// Observers of node up/down transitions, so higher layers (e.g. a
    /// federation recovery harness) can react to a `FaultPlan`'s node
    /// crashes without the sim crate knowing about them.
    node_observers: Vec<NodeObserver>,
    rng: SimRng,
    stats: NetStats,
}

impl fmt::Debug for Network {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Network")
            .field("links", &self.links.len())
            .field("receivers", &self.receivers.len())
            .field("stats", &self.stats)
            .finish()
    }
}

impl Network {
    /// Creates a network whose unspecified links use `default_link`.
    ///
    /// The RNG stream should be forked from the simulation master seed,
    /// e.g. `sim.fork_rng("network")`.
    #[must_use]
    pub fn new(default_link: LinkConfig, rng: SimRng) -> Self {
        Network {
            default_link,
            links: BTreeMap::new(),
            receivers: BTreeMap::new(),
            downed_nodes: BTreeSet::new(),
            node_observers: Vec::new(),
            rng,
            stats: NetStats::default(),
        }
    }

    fn link_state(&mut self, src: NodeId, dst: NodeId) -> &mut LinkState {
        let default = &self.default_link;
        self.links
            .entry((src, dst))
            .or_insert_with(|| LinkState::new(default.clone()))
    }
}

/// A shared, clonable handle to the simulated network.
///
/// # Examples
///
/// ```
/// use dear_sim::{Frame, LinkConfig, NetworkHandle, NodeId, Simulation};
/// use dear_time::Duration;
/// use std::cell::RefCell;
/// use std::rc::Rc;
///
/// let mut sim = Simulation::new(1);
/// let net = NetworkHandle::new(LinkConfig::ideal(Duration::from_micros(100)), sim.fork_rng("net"));
///
/// let got = Rc::new(RefCell::new(Vec::new()));
/// let sink = got.clone();
/// net.set_receiver(NodeId(2), move |_sim, frame| {
///     sink.borrow_mut().push(frame.payload);
/// });
///
/// net.send(&mut sim, Frame { src: NodeId(1), dst: NodeId(2), payload: vec![0xAB].into() });
/// sim.run_to_completion();
/// assert_eq!(*got.borrow(), vec![vec![0xAB]]);
/// ```
#[derive(Clone)]
pub struct NetworkHandle(Rc<RefCell<Network>>);

impl fmt::Debug for NetworkHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.borrow().fmt(f)
    }
}

impl NetworkHandle {
    /// Creates a new network behind a shared handle.
    #[must_use]
    pub fn new(default_link: LinkConfig, rng: SimRng) -> Self {
        NetworkHandle(Rc::new(RefCell::new(Network::new(default_link, rng))))
    }

    /// Configures the directed link `src -> dst`.
    pub fn configure_link(&self, src: NodeId, dst: NodeId, config: LinkConfig) {
        self.0
            .borrow_mut()
            .links
            .insert((src, dst), LinkState::new(config));
    }

    /// Configures both directions between two nodes symmetrically.
    pub fn configure_duplex(&self, a: NodeId, b: NodeId, config: LinkConfig) {
        self.configure_link(a, b, config.clone());
        self.configure_link(b, a, config);
    }

    /// Registers the frame receiver for a node, replacing any previous one.
    pub fn set_receiver(&self, node: NodeId, receiver: impl Fn(&mut Simulation, Frame) + 'static) {
        self.0
            .borrow_mut()
            .receivers
            .insert(node, Rc::new(receiver));
    }

    /// Removes the receiver for a node (frames to it become unroutable).
    pub fn clear_receiver(&self, node: NodeId) {
        self.0.borrow_mut().receivers.remove(&node);
    }

    /// Submits a frame for transmission at the current simulation time.
    ///
    /// Latency is sampled from the link's model; FIFO links additionally
    /// guarantee that this frame is delivered strictly after any frame
    /// previously sent on the same link.
    pub fn send(&self, sim: &mut Simulation, frame: Frame) {
        let deliver_at = {
            let mut net = self.0.borrow_mut();
            net.stats.sent += 1;
            // A downed link or node swallows the frame before any latency
            // or loss sampling, so killing either perturbs no other RNG
            // draws. Only the *sender* being down matters here: frames to
            // a downed node still travel (its durable inbox is alive).
            if net.downed_nodes.contains(&frame.src) || !net.link_state(frame.src, frame.dst).up {
                net.stats.faulted += 1;
                return;
            }
            // Sample everything we need while holding the borrow. Fault
            // overrides substitute for the configured models; the base
            // configuration (and the assumed bound `L`) stays intact.
            let latency = {
                let state = net.link_state(frame.src, frame.dst);
                let cfg = state
                    .latency_override
                    .clone()
                    .unwrap_or_else(|| state.config.latency.clone());
                cfg.sample(&mut net.rng)
            };
            let drop_p = {
                let state = net.link_state(frame.src, frame.dst);
                state.drop_override.unwrap_or(state.config.drop_probability)
            };
            if drop_p > 0.0 && net.rng.chance(drop_p) {
                net.stats.dropped += 1;
                None
            } else {
                let now = sim.now();
                let state = net.link_state(frame.src, frame.dst);
                let mut at = now + latency;
                if state.config.fifo {
                    at = at.max(state.next_free);
                    state.next_free = at + Duration::from_nanos(1);
                }
                Some(at)
            }
        };
        let Some(at) = deliver_at else { return };
        let handle = self.clone();
        sim.schedule_at(at, move |sim| handle.deliver(sim, frame));
    }

    fn deliver(&self, sim: &mut Simulation, frame: Frame) {
        // Clone the receiver out so the network is not borrowed while the
        // receiver runs (receivers commonly send further frames).
        let receiver = self.0.borrow().receivers.get(&frame.dst).cloned();
        match receiver {
            Some(r) => {
                self.0.borrow_mut().stats.delivered += 1;
                r(sim, frame);
            }
            None => {
                self.0.borrow_mut().stats.unroutable += 1;
            }
        }
    }

    /// Current delivery statistics.
    #[must_use]
    pub fn stats(&self) -> NetStats {
        self.0.borrow().stats
    }

    /// The worst-case latency bound of the `src -> dst` link (the paper's
    /// `L` for that hop). Unconfigured links report the default bound.
    ///
    /// Fault overrides are deliberately ignored: this is the *assumed*
    /// engineering bound, and a fault plan that pushes real latencies
    /// beyond it is exactly how STP violations are provoked.
    #[must_use]
    pub fn latency_bound(&self, src: NodeId, dst: NodeId) -> Duration {
        let net = self.0.borrow();
        net.links
            .get(&(src, dst))
            .map(|l| l.config.latency.upper_bound())
            .unwrap_or_else(|| net.default_link.latency.upper_bound())
    }

    // --- Fault-injection controls (used by `FaultPlan`) -------------------

    /// Takes the directed link `src -> dst` down (`up = false`) or brings
    /// it back (`up = true`). Frames sent on a downed link are dropped and
    /// counted in [`NetStats::faulted`].
    pub fn set_link_up(&self, src: NodeId, dst: NodeId, up: bool) {
        self.0.borrow_mut().link_state(src, dst).up = up;
    }

    /// Whether the directed link `src -> dst` currently carries frames.
    #[must_use]
    pub fn link_is_up(&self, src: NodeId, dst: NodeId) -> bool {
        self.0.borrow().links.get(&(src, dst)).is_none_or(|l| l.up)
    }

    /// Installs (`Some`) or clears (`None`) a loss-probability override on
    /// the directed link `src -> dst`. While set, it replaces the
    /// configured drop probability.
    pub fn set_drop_override(&self, src: NodeId, dst: NodeId, p: Option<f64>) {
        if let Some(p) = p {
            assert!((0.0..=1.0).contains(&p), "probability out of range");
        }
        self.0.borrow_mut().link_state(src, dst).drop_override = p;
    }

    /// Installs (`Some`) or clears (`None`) a latency-model override on
    /// the directed link `src -> dst`. While set, it replaces the
    /// configured model for sampling; [`NetworkHandle::latency_bound`]
    /// keeps reporting the configured bound.
    pub fn set_latency_override(&self, src: NodeId, dst: NodeId, model: Option<LatencyModel>) {
        self.0.borrow_mut().link_state(src, dst).latency_override = model;
    }

    /// Takes a whole node down (`up = false`) or brings it back
    /// (`up = true`), notifying every [`NetworkHandle::on_node_event`]
    /// observer on an actual transition. While down, frames *sent by*
    /// the node are swallowed (counted in [`NetStats::faulted`]); frames
    /// *addressed to* it still deliver, because the receiving stack's
    /// durable inbox outlives its runtime — the registered receiver
    /// decides what a dead node does with an arrival.
    pub fn set_node_up(&self, sim: &mut Simulation, node: NodeId, up: bool) {
        let observers = {
            let mut net = self.0.borrow_mut();
            let changed = if up {
                net.downed_nodes.remove(&node)
            } else {
                net.downed_nodes.insert(node)
            };
            if !changed {
                return;
            }
            net.node_observers.clone()
        };
        for observer in observers {
            observer(sim, node, up);
        }
    }

    /// Whether the node is currently up (nodes start up).
    #[must_use]
    pub fn node_is_up(&self, node: NodeId) -> bool {
        !self.0.borrow().downed_nodes.contains(&node)
    }

    /// Registers an observer of node up/down transitions (all observers
    /// run, in registration order, on every actual transition). This is
    /// how a recovery harness hooks a `FaultPlan`'s node crashes to
    /// platform-level crash/recover drivers without a layering inversion.
    pub fn on_node_event(&self, observer: impl Fn(&mut Simulation, NodeId, bool) + 'static) {
        self.0.borrow_mut().node_observers.push(Rc::new(observer));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;
    use std::rc::Rc;

    fn frame(src: u16, dst: u16, byte: u8) -> Frame {
        Frame {
            src: NodeId(src),
            dst: NodeId(dst),
            payload: vec![byte].into(),
        }
    }

    #[test]
    fn delivers_after_constant_latency() {
        let mut sim = Simulation::new(0);
        let net = NetworkHandle::new(
            LinkConfig::ideal(Duration::from_millis(5)),
            sim.fork_rng("net"),
        );
        let at = Rc::new(RefCell::new(None));
        let sink = at.clone();
        net.set_receiver(NodeId(2), move |sim, _| {
            *sink.borrow_mut() = Some(sim.now());
        });
        net.send(&mut sim, frame(1, 2, 7));
        sim.run_to_completion();
        assert_eq!(*at.borrow(), Some(Instant::from_millis(5)));
        let stats = net.stats();
        assert_eq!((stats.sent, stats.delivered), (1, 1));
    }

    #[test]
    fn fifo_link_preserves_order_despite_jitter() {
        let mut sim = Simulation::new(3);
        let net = NetworkHandle::new(
            LinkConfig::with_latency(LatencyModel::uniform(
                Duration::from_micros(10),
                Duration::from_millis(10),
            )),
            sim.fork_rng("net"),
        );
        let order = Rc::new(RefCell::new(Vec::new()));
        let sink = order.clone();
        net.set_receiver(NodeId(2), move |_, f| sink.borrow_mut().push(f.payload[0]));
        for i in 0..50u8 {
            net.send(&mut sim, frame(1, 2, i));
        }
        sim.run_to_completion();
        assert_eq!(*order.borrow(), (0..50).collect::<Vec<u8>>());
    }

    #[test]
    fn reordering_link_can_reorder() {
        let mut sim = Simulation::new(3);
        let net = NetworkHandle::new(
            LinkConfig::with_latency(LatencyModel::uniform(
                Duration::from_micros(10),
                Duration::from_millis(10),
            ))
            .reordering(),
            sim.fork_rng("net"),
        );
        let order = Rc::new(RefCell::new(Vec::new()));
        let sink = order.clone();
        net.set_receiver(NodeId(2), move |_, f| sink.borrow_mut().push(f.payload[0]));
        for i in 0..50u8 {
            net.send(&mut sim, frame(1, 2, i));
        }
        sim.run_to_completion();
        let received = order.borrow().clone();
        assert_eq!(received.len(), 50);
        assert_ne!(
            received,
            (0..50).collect::<Vec<u8>>(),
            "expected reordering"
        );
    }

    #[test]
    fn lossy_link_drops_frames() {
        let mut sim = Simulation::new(5);
        let net = NetworkHandle::new(
            LinkConfig::ideal(Duration::from_micros(1)).with_drop_probability(0.5),
            sim.fork_rng("net"),
        );
        let count = Rc::new(RefCell::new(0u32));
        let sink = count.clone();
        net.set_receiver(NodeId(2), move |_, _| *sink.borrow_mut() += 1);
        for i in 0..200u8 {
            net.send(&mut sim, frame(1, 2, i));
        }
        sim.run_to_completion();
        let delivered = *count.borrow();
        assert!(delivered > 50 && delivered < 150, "delivered {delivered}");
        let stats = net.stats();
        assert_eq!(stats.sent, 200);
        assert_eq!(stats.delivered + stats.dropped, 200);
    }

    #[test]
    fn unroutable_frames_are_counted() {
        let mut sim = Simulation::new(0);
        let net = NetworkHandle::new(LinkConfig::default(), sim.fork_rng("net"));
        net.send(&mut sim, frame(1, 9, 0));
        sim.run_to_completion();
        assert_eq!(net.stats().unroutable, 1);
    }

    #[test]
    fn per_link_configuration_overrides_default() {
        let mut sim = Simulation::new(0);
        let net = NetworkHandle::new(
            LinkConfig::ideal(Duration::from_millis(100)),
            sim.fork_rng("net"),
        );
        net.configure_link(
            NodeId(1),
            NodeId(2),
            LinkConfig::ideal(Duration::from_millis(1)),
        );
        let at = Rc::new(RefCell::new(Vec::new()));
        let sink = at.clone();
        net.set_receiver(NodeId(2), move |sim, _| sink.borrow_mut().push(sim.now()));
        let sink = at.clone();
        net.set_receiver(NodeId(3), move |sim, _| sink.borrow_mut().push(sim.now()));
        net.send(&mut sim, frame(1, 2, 0)); // fast configured link
        net.send(&mut sim, frame(1, 3, 0)); // default slow link
        sim.run_to_completion();
        assert_eq!(
            *at.borrow(),
            vec![Instant::from_millis(1), Instant::from_millis(100)]
        );
        assert_eq!(
            net.latency_bound(NodeId(1), NodeId(2)),
            Duration::from_millis(1)
        );
        assert_eq!(
            net.latency_bound(NodeId(1), NodeId(3)),
            Duration::from_millis(100)
        );
    }

    #[test]
    fn receivers_can_send_replies() {
        let mut sim = Simulation::new(0);
        let net = NetworkHandle::new(
            LinkConfig::ideal(Duration::from_millis(1)),
            sim.fork_rng("net"),
        );
        let reply_net = net.clone();
        net.set_receiver(NodeId(2), move |sim, f| {
            reply_net.send(
                sim,
                Frame {
                    src: f.dst,
                    dst: f.src,
                    payload: vec![f.payload[0] + 1].into(),
                },
            );
        });
        let got = Rc::new(RefCell::new(None));
        let sink = got.clone();
        net.set_receiver(NodeId(1), move |sim, f| {
            *sink.borrow_mut() = Some((sim.now(), f.payload[0]));
        });
        net.send(&mut sim, frame(1, 2, 10));
        sim.run_to_completion();
        assert_eq!(*got.borrow(), Some((Instant::from_millis(2), 11)));
    }

    #[test]
    fn downed_link_drops_until_healed() {
        let mut sim = Simulation::new(0);
        let net = NetworkHandle::new(
            LinkConfig::ideal(Duration::from_micros(1)),
            sim.fork_rng("net"),
        );
        let count = Rc::new(RefCell::new(0u32));
        let sink = count.clone();
        net.set_receiver(NodeId(2), move |_, _| *sink.borrow_mut() += 1);
        assert!(net.link_is_up(NodeId(1), NodeId(2)));
        net.set_link_up(NodeId(1), NodeId(2), false);
        assert!(!net.link_is_up(NodeId(1), NodeId(2)));
        net.send(&mut sim, frame(1, 2, 0));
        net.send(&mut sim, frame(1, 2, 1));
        sim.run_to_completion();
        assert_eq!(*count.borrow(), 0);
        assert_eq!(net.stats().faulted, 2);
        net.set_link_up(NodeId(1), NodeId(2), true);
        net.send(&mut sim, frame(1, 2, 2));
        sim.run_to_completion();
        assert_eq!(*count.borrow(), 1);
        // The reverse direction was never touched.
        assert!(net.link_is_up(NodeId(2), NodeId(1)));
    }

    #[test]
    fn downed_node_blocks_sends_but_not_arrivals() {
        let mut sim = Simulation::new(0);
        let net = NetworkHandle::new(
            LinkConfig::ideal(Duration::from_micros(1)),
            sim.fork_rng("net"),
        );
        let hits = Rc::new(RefCell::new(Vec::new()));
        for node in [1u16, 2] {
            let sink = hits.clone();
            net.set_receiver(NodeId(node), move |_, f| {
                sink.borrow_mut().push((f.dst, f.payload[0]));
            });
        }
        let events = Rc::new(RefCell::new(Vec::new()));
        let sink = events.clone();
        net.on_node_event(move |_, node, up| sink.borrow_mut().push((node, up)));

        assert!(net.node_is_up(NodeId(2)));
        net.set_node_up(&mut sim, NodeId(2), false);
        net.set_node_up(&mut sim, NodeId(2), false); // no transition, no event
        assert!(!net.node_is_up(NodeId(2)));
        net.send(&mut sim, frame(2, 1, 10)); // from the dead node: swallowed
        net.send(&mut sim, frame(1, 2, 20)); // to the dead node: delivered
        sim.run_to_completion();
        assert_eq!(*hits.borrow(), vec![(NodeId(2), 20)]);
        assert_eq!(net.stats().faulted, 1);

        net.set_node_up(&mut sim, NodeId(2), true);
        net.send(&mut sim, frame(2, 1, 30));
        sim.run_to_completion();
        assert_eq!(hits.borrow().last(), Some(&(NodeId(1), 30)));
        assert_eq!(
            *events.borrow(),
            vec![(NodeId(2), false), (NodeId(2), true)]
        );
    }

    #[test]
    fn drop_and_latency_overrides_apply_and_clear() {
        let mut sim = Simulation::new(9);
        let net = NetworkHandle::new(
            LinkConfig::ideal(Duration::from_millis(1)),
            sim.fork_rng("net"),
        );
        let hits = Rc::new(RefCell::new(Vec::new()));
        let sink = hits.clone();
        net.set_receiver(NodeId(2), move |sim, f| {
            sink.borrow_mut().push((sim.now(), f.payload[0]));
        });
        // Total loss while the override is set.
        net.set_drop_override(NodeId(1), NodeId(2), Some(1.0));
        net.send(&mut sim, frame(1, 2, 0));
        sim.run_to_completion();
        assert!(hits.borrow().is_empty());
        assert_eq!(net.stats().dropped, 1);
        // Cleared: back to the configured lossless constant-latency link.
        net.set_drop_override(NodeId(1), NodeId(2), None);
        // A latency spike does not move the assumed bound.
        net.set_latency_override(
            NodeId(1),
            NodeId(2),
            Some(LatencyModel::constant(Duration::from_millis(50))),
        );
        assert_eq!(
            net.latency_bound(NodeId(1), NodeId(2)),
            Duration::from_millis(1)
        );
        let t0 = sim.now();
        net.send(&mut sim, frame(1, 2, 1));
        sim.run_to_completion();
        assert_eq!(hits.borrow()[0], (t0 + Duration::from_millis(50), 1));
        net.set_latency_override(NodeId(1), NodeId(2), None);
        let t1 = sim.now();
        net.send(&mut sim, frame(1, 2, 2));
        sim.run_to_completion();
        assert_eq!(hits.borrow()[1], (t1 + Duration::from_millis(1), 2));
    }

    #[test]
    fn same_seed_same_delivery_schedule() {
        fn run(seed: u64) -> Vec<u8> {
            let mut sim = Simulation::new(seed);
            let net = NetworkHandle::new(
                LinkConfig::with_latency(LatencyModel::uniform(
                    Duration::from_micros(10),
                    Duration::from_millis(20),
                ))
                .reordering(),
                sim.fork_rng("net"),
            );
            let order = Rc::new(RefCell::new(Vec::new()));
            let sink = order.clone();
            net.set_receiver(NodeId(2), move |_, f| sink.borrow_mut().push(f.payload[0]));
            for i in 0..30u8 {
                net.send(&mut sim, frame(1, 2, i));
            }
            sim.run_to_completion();
            let v = order.borrow().clone();
            v
        }
        assert_eq!(run(11), run(11));
        assert_ne!(run(11), run(12));
    }
}
