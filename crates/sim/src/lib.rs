//! # dear-sim — seeded discrete-event platform simulator
//!
//! This crate is the hardware substitute for the reproduction of
//! *Achieving Determinism in Adaptive AUTOSAR* (DATE 2020). The paper's
//! evaluation ran on two MinnowBoard Turbot boards connected by an Ethernet
//! switch; here, platforms, their clocks, their thread pools, and the
//! network between them are simulated under a single seeded event calendar
//! so that every experiment instance is exactly reproducible from
//! `(seed, parameters)`.
//!
//! The pieces:
//!
//! * [`Simulation`] — the event calendar and virtual "true time".
//! * [`SimRng`] / [`LatencyModel`] — deterministic randomness and the delay
//!   distributions used throughout.
//! * [`VirtualClock`] / [`ClockModel`] — per-platform clocks with bounded
//!   skew and drift (the paper's clock-sync error `E`).
//! * [`NetworkHandle`] — point-to-point links with latency, jitter, loss,
//!   and optional reordering (nondeterminism source 3).
//! * [`FaultPlan`] — deterministic fault injection: seeded,
//!   logical-time-scheduled campaigns of loss bursts, latency spikes,
//!   link kills and partitions, replayable bit-for-bit.
//! * [`TaskPool`] — worker-thread dispatch with stochastic scheduling
//!   delay (nondeterminism source 1).
//! * [`FrameBuf`] / [`FramePool`] — pooled, reference-counted frame
//!   buffers: the zero-copy payload representation every layer above
//!   (SOME/IP, transactors, federation) moves message bytes in.
//! * [`Trace`] — deterministic fingerprinting of observable behaviour.
//!
//! # Quickstart
//!
//! ```
//! use dear_sim::{Frame, LinkConfig, NetworkHandle, NodeId, Simulation};
//! use dear_time::Duration;
//!
//! let mut sim = Simulation::new(42);
//! let net = NetworkHandle::new(LinkConfig::ideal(Duration::from_micros(500)), sim.fork_rng("net"));
//! net.set_receiver(NodeId(1), |sim, frame| {
//!     println!("got {:?} at {}", frame.payload, sim.now());
//! });
//! net.send(&mut sim, Frame { src: NodeId(0), dst: NodeId(1), payload: vec![1, 2, 3].into() });
//! sim.run_to_completion();
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod clock;
mod fault;
mod frame;
mod net;
mod pool;
mod rng;
mod sim;
mod trace;

pub use clock::{ClockModel, VirtualClock};
pub use fault::{FaultAction, FaultEvent, FaultPlan};
pub use frame::{FrameBuf, FrameMut, FramePool, FramePoolStats, DEFAULT_MAX_FREE};
pub use net::{Frame, LinkConfig, NetStats, NetworkHandle, NodeId};
pub use pool::{PoolStats, TaskPool};
pub use rng::{LatencyModel, SimRng};
pub use sim::{SimStats, Simulation};
pub use trace::{Trace, TraceDetail, TraceEvent};
