//! Fault-injection determinism: the same seed and the same [`FaultPlan`]
//! must replay byte-identically — `NetStats` and trace fingerprints
//! included — even on drop- and reorder-heavy links. Plus the drop-path
//! recycling regression: frames swallowed by the loss model (or a downed
//! link) must return their buffers to the origin [`FramePool`].

use dear_sim::{
    FaultPlan, Frame, FramePool, LatencyModel, LinkConfig, NetStats, NetworkHandle, NodeId,
    Simulation,
};
use dear_time::{Duration, Instant};
use proptest::prelude::*;
use std::cell::RefCell;
use std::rc::Rc;

/// One seeded run: a three-node mesh on jittery, reordering, lossy
/// links, a randomized fault campaign on top, every delivery recorded in
/// the trace. Returns the delivery stats and the trace fingerprint.
fn run_campaign(seed: u64, fault_count: usize, drop_p: f64, reordering: bool) -> (NetStats, u64) {
    let mut sim = Simulation::new(seed);
    sim.enable_tracing();
    let mut link = LinkConfig::with_latency(LatencyModel::uniform(
        Duration::from_micros(50),
        Duration::from_millis(8),
    ))
    .with_drop_probability(drop_p);
    if reordering {
        link = link.reordering();
    }
    let net = NetworkHandle::new(link, sim.fork_rng("net"));

    let nodes = [NodeId(1), NodeId(2), NodeId(3)];
    for &node in &nodes {
        let handle = net.clone();
        net.set_receiver(node, move |sim, frame| {
            sim.trace_with("deliver", || {
                format!("{} -> {}: {:?}", frame.src, frame.dst, &frame.payload[..])
            });
            // Nodes 1 and 2 bounce small frames onward so traffic keeps
            // flowing through fault windows.
            if frame.dst != NodeId(3) && frame.payload[0] < 200 {
                handle.send(
                    sim,
                    Frame {
                        src: frame.dst,
                        dst: NodeId(frame.dst.0 + 1),
                        payload: vec![frame.payload[0] + 1].into(),
                    },
                );
            }
        });
    }

    let links = [
        (NodeId(1), NodeId(2)),
        (NodeId(2), NodeId(3)),
        (NodeId(2), NodeId(1)),
    ];
    let mut fault_rng = sim.fork_rng("faults");
    let plan = FaultPlan::randomized(
        &mut fault_rng,
        &links,
        Duration::from_millis(500),
        fault_count,
    );
    plan.apply(&mut sim, &net);

    // A burst of traffic every 5 ms for the whole campaign window.
    for k in 0..100u64 {
        let net = net.clone();
        sim.schedule_at(Instant::from_millis(5 * k), move |sim| {
            net.send(
                sim,
                Frame {
                    src: NodeId(1),
                    dst: NodeId(2),
                    payload: vec![(k % 100) as u8].into(),
                },
            );
        });
    }

    sim.run_to_completion();
    (net.stats(), sim.trace_log().fingerprint())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Same seed + same plan ⇒ byte-identical stats and traces, across
    /// lossless, lossy and reorder-heavy links.
    #[test]
    fn same_seed_same_plan_replays_byte_identically(
        seed in 0u64..1_000_000,
        fault_count in 1usize..20,
        drop_pct in 0u32..60,
        reordering in any::<bool>(),
    ) {
        let drop_p = f64::from(drop_pct) / 100.0;
        let a = run_campaign(seed, fault_count, drop_p, reordering);
        let b = run_campaign(seed, fault_count, drop_p, reordering);
        prop_assert_eq!(a, b);
    }
}

#[test]
fn different_seeds_diverge() {
    let fingerprints: Vec<u64> = (0..4)
        .map(|seed| run_campaign(seed, 10, 0.3, true).1)
        .collect();
    let distinct: std::collections::HashSet<u64> = fingerprints.iter().copied().collect();
    assert!(distinct.len() > 1, "seeds should differ: {fingerprints:?}");
}

#[test]
fn faults_actually_bite() {
    // Sanity: a campaign with kills and bursts drops traffic a faultless
    // run would deliver.
    let (with_faults, _) = run_campaign(7, 16, 0.0, false);
    let (without, _) = run_campaign(7, 0, 0.0, false);
    assert_eq!(without.dropped + without.faulted, 0);
    assert!(
        with_faults.dropped + with_faults.faulted > 0,
        "the campaign should cost something: {with_faults:?}"
    );
}

/// The drop-path recycling regression: every frame dropped by the loss
/// model, a loss burst, or a downed link must return its buffer to the
/// origin pool once all views are gone.
#[test]
fn dropped_frames_return_their_buffers_to_the_pool() {
    let mut sim = Simulation::new(5);
    let net = NetworkHandle::new(
        LinkConfig::ideal(Duration::from_micros(10)).with_drop_probability(0.7),
        sim.fork_rng("net"),
    );
    // No receiver for node 9: the delivered remainder becomes unroutable
    // and must recycle too.
    let received = Rc::new(RefCell::new(0u64));
    let sink = received.clone();
    net.set_receiver(NodeId(2), move |_, _| *sink.borrow_mut() += 1);

    let pool = FramePool::new();
    let mut plan = FaultPlan::new();
    plan.loss_burst(
        Instant::from_millis(2),
        NodeId(1),
        NodeId(2),
        1.0,
        Duration::from_millis(3),
    );
    plan.kill_link(Instant::from_millis(8), NodeId(1), NodeId(9));
    plan.apply(&mut sim, &net);

    for k in 0..500u64 {
        let net = net.clone();
        let pool = pool.clone();
        sim.schedule_at(Instant::from_micros(20 * k), move |sim| {
            let mut frame = pool.acquire();
            frame.extend_from_slice(&k.to_le_bytes());
            net.send(
                sim,
                Frame {
                    src: NodeId(1),
                    dst: NodeId(if k % 3 == 0 { 9 } else { 2 }),
                    payload: frame.freeze(),
                },
            );
        });
    }
    sim.run_to_completion();

    let stats = net.stats();
    assert_eq!(stats.sent, 500);
    assert!(stats.dropped > 100, "drop-heavy run: {stats:?}");
    assert!(stats.faulted > 0, "the killed link swallowed frames");
    assert_eq!(
        stats.delivered + stats.dropped + stats.unroutable + stats.faulted,
        500
    );
    // Every buffer is back on the free list: pool length restored to the
    // working set, regardless of whether the frame was delivered,
    // dropped, faulted or unroutable.
    let pstats = pool.stats();
    assert_eq!(
        pool.free_count() as u64,
        pstats.created,
        "all {} created buffers must be recycled: {pstats:?}",
        pstats.created
    );
    assert_eq!(pstats.recycled, 500, "every send recycled exactly once");
}
