//! The paper's §II.B claim about AP's own "deterministic client":
//! "Because its scope is limited to individual SWCs, the solution only
//! addresses the first source of nondeterminism. Applications that
//! consist of multiple communicating deterministic clients can still
//! exhibit nondeterminism via 2) and 3)."
//!
//! Here a server SWC processes requests with a deterministic client
//! (fixed task order per activation cycle — source 1 fixed), but the
//! *arrival order* of requests from two independent clients still depends
//! on network timing (source 3), so the application-visible result varies
//! across seeds.

use dear::ara::{DeterministicClient, SoftwareComponent, SwcConfig};
use dear::sim::{LatencyModel, LinkConfig, NetworkHandle, NodeId, Simulation};
use dear::someip::SdRegistry;
use dear::time::{Duration, Instant};
use std::cell::RefCell;
use std::rc::Rc;

/// Runs the two-client scenario; returns the order in which the server's
/// deterministic client processed the requests.
fn run(seed: u64) -> Vec<u8> {
    let mut sim = Simulation::new(seed);
    let net = NetworkHandle::new(
        LinkConfig::with_latency(LatencyModel::uniform(
            Duration::from_micros(100),
            Duration::from_millis(5),
        )),
        sim.fork_rng("net"),
    );
    let sd = SdRegistry::new();

    // Server: requests land in an inbox; a deterministic client drains it
    // with a fixed task table every cycle.
    let server = SoftwareComponent::launch(
        &sim,
        &net,
        &sd,
        SwcConfig::single_threaded("server", NodeId(1), 0x10),
    );
    let inbox: Rc<RefCell<Vec<u8>>> = Rc::new(RefCell::new(Vec::new()));
    let processed: Rc<RefCell<Vec<u8>>> = Rc::new(RefCell::new(Vec::new()));
    {
        let skel = server.skeleton(&sim, 0x42, 1);
        let inbox2 = inbox.clone();
        skel.provide_method_deferred(1, move |sim, payload, responder| {
            inbox2.borrow_mut().push(payload[0]);
            responder.reply(sim, payload);
        });
        skel.offer(&mut sim, Duration::from_secs(100));
    }
    let det = DeterministicClient::new("server-logic", sim.fork_rng("det"));
    {
        let inbox = inbox.clone();
        let processed = processed.clone();
        // Fixed task table: drain, then post-process. Same order every
        // cycle — source 1 is fixed.
        det.register_task("drain", move |ctx| {
            let mut pending = inbox.borrow_mut();
            processed.borrow_mut().extend(pending.drain(..));
            let _ = ctx;
        });
        det.register_task("post", |_| {});
    }
    det.start(
        &mut sim,
        Duration::from_millis(10),
        Duration::from_millis(10),
    );

    // Two clients on different nodes, firing "simultaneously".
    for (node, value) in [(2u16, 1u8), (3u16, 2u8)] {
        let client = SoftwareComponent::launch(
            &sim,
            &net,
            &sd,
            SwcConfig::single_threaded(&format!("client{node}"), NodeId(node), 0x20 + node),
        );
        let proxy = client.proxy(0x42, 1);
        sim.schedule_at(Instant::from_millis(1), move |sim| {
            let _ = proxy.call(sim, 1, vec![value]);
        });
    }

    sim.run_until(Instant::from_millis(100));
    let result = processed.borrow().clone();
    result
}

#[test]
fn intra_swc_order_is_fixed_but_cross_swc_order_is_not() {
    // Every run processes both requests...
    let mut orders = std::collections::HashSet::new();
    for seed in 0..40 {
        let order = run(seed);
        assert_eq!(order.len(), 2, "seed {seed}: both requests processed");
        orders.insert(order);
    }
    // ...but across seeds the order differs: the deterministic client did
    // not fix nondeterminism sources 2 and 3.
    assert_eq!(
        orders.len(),
        2,
        "expected both interleavings to occur across seeds"
    );
}

#[test]
fn per_seed_replay_is_exact() {
    for seed in [0, 7, 23] {
        assert_eq!(run(seed), run(seed), "seed {seed}");
    }
}
