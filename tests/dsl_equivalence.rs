//! Property: a pipeline authored with `#[derive(Reactor)]` is
//! indistinguishable from the same pipeline assembled by hand against
//! `ProgramBuilder` — identical element counts, identical qualified
//! reaction names, identical APG levels, and (after running both to
//! completion) identical executed-reaction counts and byte-identical
//! replay trace fingerprints.
//!
//! The topology is randomized per case: chain length, timer period and
//! the number of frames the source emits all come from proptest, with
//! the runtime-valued timer period flowing into the DSL build through an
//! `#[external]` field.

use dear::reactor::{
    Port, Program, ProgramBuilder, Reaction, ReactionCtx, Reactor, Runtime, Timer,
};
use dear::time::{Duration, Instant};
use proptest::prelude::*;

/// Source: emits `limit` counted values, `period` apart, then requests
/// shutdown. Period and limit are run parameters, not literals, so they
/// arrive as `#[external]` values.
#[derive(Reactor)]
#[reactor(state = u64)]
struct Src {
    #[output]
    out: Port<u64>,
    #[timer(period = ext.period)]
    tick: Timer,
    #[external]
    period: Duration,
    #[external]
    limit: u64,
    #[reaction(triggers(tick), effects(out))]
    emit: Reaction,
}

impl Src {
    fn emit(count: &mut u64, this: &Self, ctx: &mut ReactionCtx<'_>) {
        *count += 1;
        ctx.set(this.out, *count);
        if *count >= this.limit {
            ctx.request_shutdown();
        }
    }
}

/// One pipeline stage: folds its input into an accumulator and forwards
/// the running fold.
#[derive(Reactor)]
#[reactor(state = u64)]
struct Worker {
    #[input]
    inp: Port<u64>,
    #[output]
    out: Port<u64>,
    #[reaction(triggers(inp), effects(out))]
    work: Reaction,
}

impl Worker {
    fn work(acc: &mut u64, this: &Self, ctx: &mut ReactionCtx<'_>) {
        *acc = acc
            .wrapping_mul(31)
            .wrapping_add(*ctx.get(this.inp).unwrap());
        ctx.set(this.out, *acc);
    }
}

/// Sink: counts deliveries.
#[derive(Reactor)]
#[reactor(state = u64)]
struct Sink {
    #[input]
    inp: Port<u64>,
    #[reaction(triggers(inp))]
    collect: Reaction,
}

impl Sink {
    fn collect(seen: &mut u64, this: &Self, ctx: &mut ReactionCtx<'_>) {
        let _ = ctx.get(this.inp).unwrap();
        *seen += 1;
    }
}

fn build_dsl(workers: usize, period: Duration, limit: u64) -> Program {
    let mut b = ProgramBuilder::new();
    let src: Src = b.declare_ext("src", 0, SrcExternals { period, limit });
    let mut prev = src.out;
    for i in 0..workers {
        let w: Worker = b.declare(&format!("w{i}"), 0);
        b.connect(prev, w.inp).unwrap();
        prev = w.out;
    }
    let sink: Sink = b.declare("sink", 0);
    b.connect(prev, sink.inp).unwrap();
    b.build().expect("DSL program builds")
}

/// The hand-written twin: the exact `ProgramBuilder` calls the derive
/// expands to, element for element, in the same declaration order.
fn build_direct(workers: usize, period: Duration, limit: u64) -> Program {
    let mut b = ProgramBuilder::new();

    let mut src = b.reactor("src", 0u64);
    let out = src.output::<u64>("out");
    let tick = src.timer("tick", Duration::ZERO, Some(period));
    src.reaction("emit")
        .triggered_by(tick)
        .effects(out)
        .body(move |count: &mut u64, ctx| {
            *count += 1;
            ctx.set(out, *count);
            if *count >= limit {
                ctx.request_shutdown();
            }
        });
    src.finish();

    let mut prev = out;
    for i in 0..workers {
        let name = format!("w{i}");
        let mut w = b.reactor(&name, 0u64);
        let inp = w.input::<u64>("inp");
        let wout = w.output::<u64>("out");
        w.reaction("work")
            .triggered_by(inp)
            .effects(wout)
            .body(move |acc: &mut u64, ctx| {
                *acc = acc.wrapping_mul(31).wrapping_add(*ctx.get(inp).unwrap());
                ctx.set(wout, *acc);
            });
        w.finish();
        b.connect(prev, inp).unwrap();
        prev = wout;
    }

    let mut sink = b.reactor("sink", 0u64);
    let inp = sink.input::<u64>("inp");
    sink.reaction("collect")
        .triggered_by(inp)
        .body(move |seen: &mut u64, ctx| {
            let _ = ctx.get(inp).unwrap();
            *seen += 1;
        });
    sink.finish();
    b.connect(prev, inp).unwrap();

    b.build().expect("direct program builds")
}

/// Every qualified reaction name of the pipeline, in priority order.
fn reaction_names(workers: usize) -> Vec<String> {
    let mut names = vec!["src.emit".to_string()];
    names.extend((0..workers).map(|i| format!("w{i}.work")));
    names.push("sink.collect".to_string());
    names
}

fn run_traced(program: Program) -> (u64, u64) {
    let mut rt = Runtime::new(program);
    rt.enable_tracing();
    rt.start(Instant::EPOCH);
    rt.run_fast(u64::MAX);
    let executed = rt.stats().executed_reactions;
    (executed, rt.take_trace().fingerprint())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The derive expands to exactly the builder calls of the direct
    /// assembly: same graph, same levels, same replay.
    #[test]
    fn prop_dsl_and_direct_builder_are_identical(
        workers in 1usize..6,
        period_ms in 1i64..20,
        limit in 2u64..6,
    ) {
        let period = Duration::from_millis(period_ms);
        let dsl = build_dsl(workers, period, limit);
        let direct = build_direct(workers, period, limit);

        // Structural identity.
        prop_assert_eq!(dsl.reactor_count(), direct.reactor_count());
        prop_assert_eq!(dsl.reaction_count(), direct.reaction_count());
        prop_assert_eq!(dsl.level_count(), direct.level_count());
        prop_assert_eq!(dsl.reaction_count(), workers + 2);
        for name in reaction_names(workers) {
            let a = dsl.find_reaction(&name);
            let b = direct.find_reaction(&name);
            prop_assert!(a.is_some(), "DSL program lacks reaction `{}`", name);
            prop_assert_eq!(a, b);
            prop_assert_eq!(
                dsl.reaction_level(a.unwrap()),
                direct.reaction_level(b.unwrap())
            );
        }

        // Behavioral identity: same executed-reaction count and a
        // byte-identical replay trace.
        let (dsl_executed, dsl_fp) = run_traced(dsl);
        let (direct_executed, direct_fp) = run_traced(direct);
        prop_assert_eq!(dsl_executed, direct_executed);
        prop_assert_eq!(dsl_fp, direct_fp);
        // limit emissions, each crossing `workers` stages plus the sink.
        prop_assert_eq!(dsl_executed, limit * (workers as u64 + 2));
    }
}
