//! Integration across the stack through the facade crate: reactors,
//! transactors, SOME/IP, ARA services and the simulator working together.

use dear::ara::{FieldIds, FieldProxy, FieldSkeleton, SoftwareComponent, SwcConfig};
use dear::reactor::{ProgramBuilder, Runtime, Startup, Tag};
use dear::sim::{LatencyModel, LinkConfig, NetworkHandle, NodeId, Simulation, VirtualClock};
use dear::someip::{Binding, SdRegistry, ServiceInstance};
use dear::time::{Duration, Instant};
use dear::transactors::{
    DearConfig, EventSpec, FederatedPlatform, FieldClientTransactor, Outbox, ServerEventTransactor,
};
use std::cell::RefCell;
use std::rc::Rc;
use std::sync::{Arc, Mutex};

/// Workspace-wiring smoke test: the facade's module re-exports must resolve
/// under their documented paths. This is a compile-time property; the body
/// only pins a few of them as values/types so the test cannot be optimised
/// into vacuity.
#[test]
fn facade_reexports_resolve() {
    // `dear::reactor::Runtime` — reachable as a type.
    fn _takes_runtime(_: &dear::reactor::Runtime) {}
    // `dear::someip::Binding` — constructible from re-exported parts.
    let sim = dear::sim::Simulation::new(1);
    let net = dear::sim::NetworkHandle::new(
        dear::sim::LinkConfig::ideal(dear::time::Duration::from_micros(10)),
        sim.fork_rng("smoke"),
    );
    let _binding: dear::someip::Binding = dear::someip::Binding::new(
        &net,
        &dear::someip::SdRegistry::new(),
        dear::sim::NodeId(1),
        0x01,
    );
    // `dear::apd::run_det` — reachable as a function value.
    let _run_det: fn(u64, &dear::apd::DetParams) -> dear::apd::DetReport = dear::apd::run_det;
    // One symbol from each remaining facade module.
    let _ = dear::time::Instant::EPOCH;
    let _cfg: dear::transactors::DearConfig;
    let _swc: Option<dear::ara::SwcConfig> = None;
}

#[test]
fn ara_field_roundtrip_over_simulated_network() {
    let mut sim = Simulation::new(5);
    let net = NetworkHandle::new(
        LinkConfig::ideal(Duration::from_micros(200)),
        sim.fork_rng("net"),
    );
    let sd = SdRegistry::new();
    let server = SoftwareComponent::launch(
        &sim,
        &net,
        &sd,
        SwcConfig::single_threaded("server", NodeId(1), 0x10),
    );
    let skel = server.skeleton(&sim, 0x99, 1);
    let ids = FieldIds::conventional(0x10);
    let field = FieldSkeleton::provide(
        &skel,
        ids,
        vec![0],
        LatencyModel::constant(Duration::from_micros(100)),
    );
    skel.offer(&mut sim, Duration::from_secs(100));

    let client = SoftwareComponent::launch(
        &sim,
        &net,
        &sd,
        SwcConfig::single_threaded("client", NodeId(2), 0x20),
    );
    let fp = FieldProxy::new(client.proxy(0x99, 1), ids);
    let updates = fp.subscribe_updates();
    let got = Rc::new(RefCell::new(Vec::new()));
    let sink = got.clone();
    fp.set(&mut sim, vec![42]).then(&mut sim, move |sim, r| {
        sink.borrow_mut().push(r.expect("set succeeds").to_vec());
        let _ = sim;
    });
    sim.run_to_completion();
    assert_eq!(*got.borrow(), vec![vec![42]]);
    assert_eq!(field.value(), vec![42]);
    assert_eq!(updates.take().map(|f| f.to_vec()), Some(vec![42]));
}

#[test]
fn dear_field_transactors_bridge_reactors_to_ara_fields() {
    // A reactor-based client manipulates a field served by a plain ARA
    // component — the paper's gradual-migration story.
    let mut sim = Simulation::new(7);
    let net = NetworkHandle::new(
        LinkConfig::ideal(Duration::from_micros(200)),
        sim.fork_rng("net"),
    );
    let sd = SdRegistry::new();
    let cfg = DearConfig::new(Duration::from_millis(2), Duration::ZERO).accept_untagged();
    let ids = FieldIds::conventional(0x20);
    const SERVICE: u16 = 0x77;

    // Plain ARA field server (no tags — legacy component).
    let server = SoftwareComponent::launch(
        &sim,
        &net,
        &sd,
        SwcConfig::single_threaded("legacy-server", NodeId(1), 0x10),
    );
    let skel = server.skeleton(&sim, SERVICE, 1);
    let _field = FieldSkeleton::provide(
        &skel,
        ids,
        vec![1],
        LatencyModel::constant(Duration::from_micros(50)),
    );
    skel.offer(&mut sim, Duration::from_secs(100));

    // Reactor-based client through field transactors.
    let got: Arc<Mutex<Vec<Vec<u8>>>> = Arc::new(Mutex::new(Vec::new()));
    let outbox = Outbox::new();
    let mut b = ProgramBuilder::new();
    let fct = FieldClientTransactor::declare(&mut b, &outbox, "speed", Duration::from_millis(1));
    {
        let mut logic = b.reactor("client_logic", ());
        let set_req = logic.output::<dear::someip::FrameBuf>("set");
        let t = logic.timer("fire", Duration::from_millis(5), None);
        logic
            .reaction("write_field")
            .triggered_by(t)
            .effects(set_req)
            .body(move |_, ctx| ctx.set(set_req, vec![99].into()));
        let sink = got.clone();
        logic
            .reaction("on_set_reply")
            .triggered_by(fct.set.response)
            .body(move |_, ctx| {
                sink.lock()
                    .unwrap()
                    .push(ctx.get(fct.set.response).unwrap().to_vec());
            });
        logic.finish();
        b.connect(set_req, fct.set.request).unwrap();
    }
    let platform = FederatedPlatform::new(
        "client",
        Runtime::new(b.build().expect("program builds")),
        VirtualClock::ideal(),
        outbox,
        sim.fork_rng("costs"),
    );
    let binding = Binding::new(&net, &sd, NodeId(2), 0x20);
    fct.bind(&platform, &binding, SERVICE, 1, ids, cfg);
    platform.start(&mut sim);

    sim.run_until(Instant::from_millis(100));
    assert_eq!(
        *got.lock().unwrap(),
        vec![vec![99]],
        "set reply must reach the reactor client"
    );
}

#[test]
fn reactor_event_publisher_reaches_legacy_buffered_subscriber() {
    // Reverse migration direction: a DEAR publisher, a plain ARA consumer.
    let mut sim = Simulation::new(9);
    let net = NetworkHandle::new(
        LinkConfig::ideal(Duration::from_micros(200)),
        sim.fork_rng("net"),
    );
    let sd = SdRegistry::new();
    const SERVICE: u16 = 0x55;

    let outbox = Outbox::new();
    let mut b = ProgramBuilder::new();
    let publish =
        ServerEventTransactor::declare(&mut b, &outbox, "ticks", Duration::from_millis(1));
    {
        let mut logic = b.reactor("publisher", 0u8);
        let out = logic.output::<dear::someip::FrameBuf>("tick");
        let t = logic.timer("t", Duration::ZERO, Some(Duration::from_millis(10)));
        logic
            .reaction("emit")
            .triggered_by(t)
            .effects(out)
            .body(move |n: &mut u8, ctx| {
                *n += 1;
                ctx.set(out, vec![*n].into());
            });
        logic.finish();
        b.connect(out, publish.event).unwrap();
    }
    let platform = FederatedPlatform::new(
        "publisher",
        Runtime::new(b.build().expect("program builds")),
        VirtualClock::ideal(),
        outbox,
        sim.fork_rng("costs"),
    );
    let binding = Binding::new(&net, &sd, NodeId(1), 0x10);
    binding.offer(
        &mut sim,
        ServiceInstance::new(SERVICE, 1),
        Duration::from_secs(100),
    );
    publish.bind(
        &platform,
        &binding,
        EventSpec {
            service: SERVICE,
            instance: 1,
            eventgroup: 1,
            event: 0x8001,
        },
    );
    platform.start(&mut sim);

    let consumer = SoftwareComponent::launch(
        &sim,
        &net,
        &sd,
        SwcConfig::single_threaded("legacy-consumer", NodeId(2), 0x20),
    );
    let buf = consumer.proxy(SERVICE, 1).subscribe_buffered(1, 0x8001);

    sim.run_until(Instant::from_millis(35));
    // Ticks at 0/10/20/30 ms, all forwarded; reads see the latest value.
    let stats = buf.stats();
    assert_eq!(stats.writes, 4, "all tagged notifications delivered");
    assert_eq!(buf.take().map(|f| f.to_vec()), Some(vec![4]));
}

#[test]
fn startup_and_tag_zero_reach_through_facade() {
    // Sanity: the re-exported facade presents one coherent API surface.
    let mut b = ProgramBuilder::new();
    let mut r = b.reactor("r", 0u32);
    r.reaction("go")
        .triggered_by(Startup)
        .body(|n: &mut u32, ctx| {
            *n += 1;
            assert_eq!(ctx.tag(), Tag::ORIGIN);
        });
    r.finish();
    let mut rt = Runtime::new(b.build().expect("builds"));
    rt.start(Instant::EPOCH);
    rt.run_fast(u64::MAX);
    assert_eq!(rt.stats().executed_reactions, 1);
}
