//! Cross-crate determinism properties: reproducibility per seed
//! everywhere, seed-independence only where DEAR guarantees it.

use dear::apd::calculator::{run_trial, CalculatorConfig};
use dear::apd::{run_det, run_nondet, DetParams, NondetParams};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Everything in the workspace is replayable: the same seed gives the
    /// same observable behaviour, even for the *nondeterministic* build
    /// (whose nondeterminism is exactly the seed).
    #[test]
    fn prop_nondet_is_replayable(seed in 0u64..1000) {
        let params = NondetParams { frames: 120, ..NondetParams::default() };
        let a = run_nondet(seed, &params);
        let b = run_nondet(seed, &params);
        prop_assert_eq!(a.decision_fingerprint(), b.decision_fingerprint());
        prop_assert_eq!(a.total_errors(), b.total_errors());
        prop_assert_eq!(a.dropped_preprocessing, b.dropped_preprocessing);
        prop_assert_eq!(a.mismatches_cv, b.mismatches_cv);
    }

    /// The DEAR build is not merely replayable — it is seed-*independent*.
    #[test]
    fn prop_det_is_seed_independent(seed_a in 0u64..500, seed_b in 500u64..1000) {
        let params = DetParams { frames: 120, ..DetParams::default() };
        let a = run_det(seed_a, &params);
        let b = run_det(seed_b, &params);
        prop_assert_eq!(a.decision_fingerprint(), b.decision_fingerprint());
        prop_assert_eq!(a.decisions.len(), 120);
        prop_assert_eq!(a.mismatches_cv + a.stp_violations + a.deadline_misses, 0);
        prop_assert_eq!(b.mismatches_cv + b.stp_violations + b.deadline_misses, 0);
    }

    /// Figure 1 trials are replayable and always in range.
    #[test]
    fn prop_calculator_replayable_and_in_range(seed in 0u64..2000) {
        let cfg = CalculatorConfig::default();
        let a = run_trial(seed, &cfg);
        prop_assert_eq!(a, run_trial(seed, &cfg));
        prop_assert!((0..=3).contains(&a));
    }
}

#[test]
fn nondet_seed_sensitivity_vs_det_seed_independence() {
    // The defining contrast, in one test: vary ONLY the seed.
    let nd_params = NondetParams {
        frames: 400,
        ..NondetParams::default()
    };
    let det_params = DetParams {
        frames: 400,
        ..DetParams::default()
    };
    let nd_fps: std::collections::HashSet<u64> = (0..10)
        .map(|s| run_nondet(s, &nd_params).decision_fingerprint())
        .collect();
    let det_fps: std::collections::HashSet<u64> = (0..10)
        .map(|s| run_det(s, &det_params).decision_fingerprint())
        .collect();
    assert!(
        nd_fps.len() > 1,
        "AP-style coordination must leak timing into results"
    );
    assert_eq!(
        det_fps.len(),
        1,
        "DEAR coordination must not leak timing into results"
    );
}
