//! The telemetry spine's acceptance tests: observability must be
//! deterministic (byte-identical snapshots and exports for the same
//! seed and scenario), comparable across coordinator back-ends (the
//! purely logical `runtime/` view is the same flat and hierarchical),
//! and — the hard constraint — *observably free*: turning the full
//! instrumentation on must not move a single replay fingerprint.

use dear::apd::{run_det, DetParams};
use dear::federation::{CoordinatedPlatform, HierarchicalRti, Rti, ZoneId};
use dear::observe::{is_valid_json, Observe};
use dear::reactor::{ProgramBuilder, Runtime, Tag};
use dear::sim::{LinkConfig, NetworkHandle, NodeId, Simulation, VirtualClock};
use dear::someip::{Binding, SdRegistry, ServiceInstance};
use dear::time::{Duration, Instant};
use dear::transactors::{
    ClientEventTransactor, DearConfig, EventSpec, Outbox, ServerEventTransactor,
};
use proptest::prelude::*;
use std::sync::{Arc, Mutex};

const BRAKE: u16 = 0x0B0B;
const SPEC: EventSpec = EventSpec {
    service: BRAKE,
    instance: 1,
    eventgroup: 1,
    event: 0x8001,
};
const CONTROLLERS: usize = 2;

/// A compact platoon (one sensor fanning out to two controllers) under
/// the chosen coordinator, fully instrumented. Returns the logical
/// schedules and the run's telemetry handle.
fn run_platoon(seed: u64, hierarchical: bool) -> (Vec<Vec<(Tag, u8)>>, Observe) {
    let deadline = Duration::from_millis(2);
    let cfg = DearConfig::new(Duration::from_millis(1), Duration::ZERO);
    let edge = deadline + cfg.stp_offset();

    let mut sim = Simulation::new(seed);
    let observe = sim.enable_observability();
    let net = NetworkHandle::new(
        LinkConfig::ideal(Duration::from_micros(100)),
        sim.fork_rng("net"),
    );
    let sd = SdRegistry::new();

    let (flat, hier) = if hierarchical {
        let h = HierarchicalRti::new(&mut sim, &net, &sd, NodeId(0));
        for z in 0..CONTROLLERS {
            h.add_zone(&mut sim, &net, &sd, NodeId(1 + z as u16));
        }
        (None, Some(h))
    } else {
        (Some(Rti::new(&mut sim, &net, &sd, NodeId(0))), None)
    };
    let platform = |sim: &mut Simulation,
                    name: &str,
                    zone: usize,
                    runtime: Runtime,
                    outbox: Outbox,
                    binding: &Binding| {
        let rng = sim.fork_rng(name);
        match (&flat, &hier) {
            (Some(rti), None) => CoordinatedPlatform::new(
                name,
                runtime,
                VirtualClock::ideal(),
                outbox,
                rng,
                rti,
                binding,
                false,
            ),
            (None, Some(h)) => CoordinatedPlatform::new_in_zone(
                name,
                runtime,
                VirtualClock::ideal(),
                outbox,
                rng,
                h,
                ZoneId(zone as u16),
                binding,
                false,
            )
            .expect("zone registration"),
            _ => unreachable!(),
        }
    };

    let sensor = {
        let outbox = Outbox::new();
        let mut b = ProgramBuilder::new();
        let publish = ServerEventTransactor::declare(&mut b, &outbox, "brake", deadline);
        {
            let mut logic = b.reactor("sensor", 0u8);
            let out = logic.output::<dear::someip::FrameBuf>("out");
            let t = logic.timer(
                "sample",
                Duration::from_millis(10),
                Some(Duration::from_millis(10)),
            );
            logic.reaction("sample").triggered_by(t).effects(out).body(
                move |level: &mut u8, ctx| {
                    *level += 1;
                    if *level <= 4 {
                        ctx.set(out, vec![*level * 20].into());
                    }
                },
            );
            logic.finish();
            b.connect(out, publish.event).unwrap();
        }
        let binding = Binding::new(&net, &sd, NodeId(4), 0x40);
        binding.offer(
            &mut sim,
            ServiceInstance::new(BRAKE, 1),
            Duration::from_secs(1 << 20),
        );
        let p = platform(
            &mut sim,
            "sensor",
            0,
            Runtime::new(b.build().unwrap()),
            outbox,
            &binding,
        );
        publish.bind(&p, &binding, SPEC);
        p
    };

    let mut controllers = Vec::new();
    let mut schedules = Vec::new();
    for v in 0..CONTROLLERS {
        let outbox = Outbox::new();
        let mut b = ProgramBuilder::new();
        let input = ClientEventTransactor::declare(&mut b, "brake");
        let seen: Arc<Mutex<Vec<(Tag, u8)>>> = Arc::new(Mutex::new(Vec::new()));
        {
            let mut logic = b.reactor("controller", ());
            let sink = seen.clone();
            logic
                .reaction("apply")
                .triggered_by(input.event)
                .body(move |_, ctx| {
                    let level = ctx.get(input.event).unwrap()[0];
                    sink.lock().unwrap().push((ctx.tag(), level));
                });
            logic.finish();
        }
        let binding = Binding::new(&net, &sd, NodeId(5 + v as u16), 0x50 + v as u16);
        let p = platform(
            &mut sim,
            &format!("ctrl{v}"),
            v,
            Runtime::new(b.build().unwrap()),
            outbox,
            &binding,
        );
        input.bind(&p, &binding, SPEC, cfg);
        controllers.push(p);
        schedules.push(seen);
    }
    for ctrl in &controllers {
        match (&flat, &hier) {
            (Some(rti), None) => rti.connect(sensor.federate_id(), ctrl.federate_id(), edge),
            (None, Some(h)) => h.connect(sensor.federate_id(), ctrl.federate_id(), edge),
            _ => unreachable!(),
        }
    }

    sensor.start(&mut sim);
    for ctrl in &controllers {
        ctrl.start(&mut sim);
    }
    sim.run_until(Instant::from_millis(500));

    let schedules = schedules
        .iter()
        .map(|s| s.lock().unwrap().clone())
        .collect();
    (schedules, observe)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Same seed + same scenario ⇒ byte-identical metrics snapshot,
    /// span timeline, and Chrome export across runs.
    #[test]
    fn prop_snapshots_are_replay_deterministic(seed in 0u64..100) {
        let (sched_a, obs_a) = run_platoon(seed, true);
        let (sched_b, obs_b) = run_platoon(seed, true);
        prop_assert_eq!(sched_a, sched_b);
        prop_assert_eq!(obs_a.snapshot(), obs_b.snapshot());
        prop_assert_eq!(obs_a.span_count(), obs_b.span_count());
        prop_assert_eq!(obs_a.chrome_trace(), obs_b.chrome_trace());
    }

    /// The apd pipeline's snapshot is replay-deterministic too, and
    /// enabling it never perturbs the decision sequence.
    #[test]
    fn prop_apd_snapshot_is_replay_deterministic(seed in 0u64..100) {
        let params = DetParams {
            frames: 60,
            observability: true,
            ..DetParams::default()
        };
        let a = run_det(seed, &params);
        let b = run_det(seed, &params);
        prop_assert!(!a.metrics_snapshot.is_empty());
        prop_assert_eq!(&a.metrics_snapshot, &b.metrics_snapshot);
        prop_assert_eq!(a.decision_fingerprint(), b.decision_fingerprint());
    }
}

/// The purely logical `runtime/` view is comparable across coordinator
/// back-ends: flat single-RTI and hierarchical runs of the same
/// topology produce the identical filtered snapshot (the physical
/// `coord/` view legitimately differs — that is what it measures).
#[test]
fn runtime_metrics_identical_flat_vs_hierarchical() {
    let (sched_flat, obs_flat) = run_platoon(7, false);
    let (sched_hier, obs_hier) = run_platoon(7, true);
    assert_eq!(sched_flat, sched_hier, "sharding must be observably free");

    let flat_view = obs_flat.snapshot_filtered("runtime/");
    let hier_view = obs_hier.snapshot_filtered("runtime/");
    assert!(!flat_view.is_empty());
    assert_eq!(flat_view, hier_view);

    // The coordination views are both present but measure different
    // protocols (batched vs per-frame), so they are allowed to differ.
    assert!(!obs_flat.snapshot_filtered("coord/").is_empty());
    assert!(!obs_hier.snapshot_filtered("coord/").is_empty());
}

/// Exports are well-formed and carry the per-federate lanes plus the
/// coordination fixpoint marks.
#[test]
fn chrome_export_is_valid_and_lane_complete() {
    let (_, observe) = run_platoon(3, true);
    let json = observe.chrome_trace();
    assert!(is_valid_json(&json));
    for lane in ["sensor", "ctrl0", "ctrl1", "root"] {
        assert!(json.contains(lane), "missing lane {lane}");
    }
    assert!(json.contains("fixpoint"));
    assert!(json.contains("\"tag\""), "missing per-tag runtime spans");
}

/// The hard regression: running the brake assistant with the full
/// telemetry spine enabled (metrics, histograms, spans) produces the
/// byte-identical decision sequence and per-stage event traces as the
/// uninstrumented run — including the published fingerprint.
#[test]
fn full_instrumentation_does_not_move_fingerprints() {
    let base = DetParams {
        frames: 400,
        record_traces: true,
        ..DetParams::default()
    };
    let instrumented = DetParams {
        observability: true,
        ..base.clone()
    };
    for seed in [0u64, 3] {
        let off = run_det(seed, &base);
        let on = run_det(seed, &instrumented);
        assert_eq!(off.decision_fingerprint(), on.decision_fingerprint());
        assert_eq!(off.stage_traces, on.stage_traces);
        assert_eq!(off.end_to_end, on.end_to_end);
        assert!(off.metrics_snapshot.is_empty());
        assert!(!on.metrics_snapshot.is_empty());
    }

    // The published 2000-frame fingerprint (README, EXPERIMENTS.md)
    // must not move under instrumentation either.
    let full = run_det(
        0,
        &DetParams {
            frames: 2000,
            observability: true,
            ..DetParams::default()
        },
    );
    assert_eq!(full.decision_fingerprint(), 0xf3e5_22a0_b4ee_1cff);
}
