//! Workspace-level integration test of the paper's headline comparison:
//! the same brake-assistant pipeline, nondeterministic under AP-style
//! coordination, deterministic under DEAR.

use dear::apd::{run_det, run_nondet, DetParams, NondetParams};

fn nd_params() -> NondetParams {
    NondetParams {
        frames: 400,
        ..NondetParams::default()
    }
}

fn det_params() -> DetParams {
    DetParams {
        frames: 400,
        ..DetParams::default()
    }
}

#[test]
fn nondet_build_exhibits_the_papers_error_modes() {
    let reports: Vec<_> = (0..10).map(|s| run_nondet(s, &nd_params())).collect();
    // At least one instance with errors, and at least two different error
    // types across the ensemble (the paper's stacked bars).
    let total: u64 = reports.iter().map(|r| r.total_errors()).sum();
    assert!(total > 0, "expected errors somewhere in the ensemble");
    let mut kinds = 0;
    if reports.iter().any(|r| r.dropped_preprocessing > 0) {
        kinds += 1;
    }
    if reports.iter().any(|r| r.dropped_cv > 0) {
        kinds += 1;
    }
    if reports.iter().any(|r| r.mismatches_cv > 0) {
        kinds += 1;
    }
    if reports.iter().any(|r| r.dropped_eba > 0) {
        kinds += 1;
    }
    assert!(kinds >= 2, "expected at least two error types, got {kinds}");
    // Content is never corrupted — errors are drops/misalignment only.
    assert!(reports.iter().all(|r| r.wrong_decisions == 0));
}

#[test]
fn det_build_is_error_free_and_seed_independent() {
    let reports: Vec<_> = (0..6).map(|s| run_det(s, &det_params())).collect();
    for (i, r) in reports.iter().enumerate() {
        assert_eq!(r.decisions.len(), 400, "seed {i}: every frame decided");
        assert_eq!(r.mismatches_cv, 0, "seed {i}");
        assert_eq!(r.stp_violations, 0, "seed {i}");
        assert_eq!(r.deadline_misses, 0, "seed {i}");
        assert_eq!(r.wrong_decisions, 0, "seed {i}");
    }
    let fp0 = reports[0].decision_fingerprint();
    assert!(
        reports.iter().all(|r| r.decision_fingerprint() == fp0),
        "decision sequences must be identical across seeds"
    );
}

#[test]
fn det_decisions_match_reference_logic_frame_by_frame() {
    let report = run_det(11, &det_params());
    for d in &report.decisions {
        assert_eq!(
            d.brake,
            dear::apd::reference_decision(d.frame_id),
            "frame {}",
            d.frame_id
        );
    }
    // In-order, gap-free.
    let ids: Vec<u64> = report.decisions.iter().map(|d| d.frame_id).collect();
    assert_eq!(ids, (0..400).collect::<Vec<u64>>());
}

#[test]
fn nondet_decisions_are_a_subsequence_of_the_reference() {
    // Frames may be dropped, but whatever survives is correct and ordered.
    let report = run_nondet(6, &nd_params());
    let ids: Vec<u64> = report.decisions.iter().map(|d| d.frame_id).collect();
    let mut sorted = ids.clone();
    sorted.sort_unstable();
    sorted.dedup();
    assert_eq!(ids, sorted, "decisions stay in frame order without repeats");
    for d in &report.decisions {
        assert_eq!(d.brake, dear::apd::reference_decision(d.frame_id));
    }
}

#[test]
fn det_end_to_end_latency_follows_the_deadline_sum() {
    use dear::time::Duration;
    let mut params = det_params();
    params.frames = 50;
    // Custom deadlines: latency = (Da + L) + (Dp + L) + (Dcv + L).
    params.deadlines.adapter = Duration::from_millis(4);
    params.deadlines.preprocessing = Duration::from_millis(20);
    params.deadlines.computer_vision = Duration::from_millis(22);
    let report = run_det(3, &params);
    let expected = Duration::from_millis(4 + 5 + 20 + 5 + 22 + 5);
    assert!(
        report.end_to_end.iter().all(|&l| l == expected),
        "expected constant {expected}, got {:?}",
        &report.end_to_end[..report.end_to_end.len().min(5)]
    );
}
