//! The centralized-coordination acceptance test: the RTI-driven and the
//! decentralized PTIDES-style drivers must be *observably identical* on
//! the brake-assistant topology — byte-identical per-stage event traces
//! across multiple seeds — and the centralized driver must provably never
//! process a tag beyond its last granted bound.

use dear::apd::{run_det, DetParams};
use dear::transactors::Coordination;

fn params(coordination: Coordination) -> DetParams {
    DetParams {
        frames: 200,
        coordination,
        record_traces: true,
        ..DetParams::default()
    }
}

#[test]
fn centralized_and_decentralized_traces_are_byte_identical() {
    for seed in [0u64, 1, 2, 42] {
        let dec = run_det(seed, &params(Coordination::Decentralized));
        let cen = run_det(seed, &params(Coordination::Centralized));

        // Same decisions, same latency profile.
        assert_eq!(
            dec.decision_fingerprint(),
            cen.decision_fingerprint(),
            "seed {seed}: decision sequences diverged"
        );
        assert_eq!(dec.end_to_end, cen.end_to_end, "seed {seed}");

        // The strong claim: every stage's runtime event trace (reactions,
        // deadline misses, STP violations, with tags) is byte-identical.
        assert_eq!(dec.stage_traces.len(), 4);
        assert_eq!(
            dec.stage_traces, cen.stage_traces,
            "seed {seed}: stage event traces diverged"
        );

        // Both builds stay error-free.
        for (label, r) in [("decentralized", &dec), ("centralized", &cen)] {
            assert_eq!(r.decisions.len(), 200, "seed {seed} {label}");
            assert_eq!(r.mismatches_cv, 0, "seed {seed} {label}");
            assert_eq!(r.stp_violations, 0, "seed {seed} {label}");
            assert_eq!(r.deadline_misses, 0, "seed {seed} {label}");
            assert_eq!(r.wrong_decisions, 0, "seed {seed} {label}");
        }
    }
}

#[test]
fn centralized_driver_respects_granted_bounds() {
    let report = run_det(7, &params(Coordination::Centralized));
    let coord = &report.coordination;

    // The coordination layer was genuinely exercised...
    assert!(coord.grants_received > 0, "no grants flowed: {coord:?}");
    assert!(coord.nets_sent > 0);
    assert!(coord.ltcs_sent > 0);

    // ...and never let a stage run past its bound.
    assert_eq!(coord.bound_breaches, 0, "{coord:?}");
    assert!(coord.within_bound, "{coord:?}");
}

#[test]
fn decentralized_runs_report_zero_coordination_traffic() {
    let report = run_det(7, &params(Coordination::Decentralized));
    let coord = &report.coordination;
    assert_eq!(coord.grants_received, 0);
    assert_eq!(coord.nets_sent, 0);
    assert_eq!(coord.ltcs_sent, 0);
    assert!(coord.within_bound);
}
